//! The shared cloud tier: a per-region *serving tier* of heterogeneous
//! batched backends behind an admission controller.
//!
//! The paper idealizes the cloud as infinitely fast (`L_cloud = 0`); at
//! fleet scale that assumption breaks first. PR 2 modeled each region as a
//! single fluid FIFO/priority queue; this module grows that into a serving
//! tier:
//!
//! * [`BackendConfig`] — one pool of identical executors (e.g. a GPU pool
//!   vs. a CPU pool) with an affine batch cost
//!   `T(b) = base_service_ms + per_item_ms · b`, so the per-item cost
//!   `T(b)/b` falls as batches grow — exactly the amortization LCP
//!   (Hadidi et al. 2020) exploits for communication.
//! * [`BatchPolicy`] — a dynamic batcher per backend: batches close at
//!   `max_batch` items or when `linger_ms` expires, whichever comes first.
//! * [`AdmissionPolicy`] — queue-depth or deadline-based shedding. The
//!   controller publishes a *shed fraction* at each epoch barrier; devices
//!   apply it (deterministically, from their own seeded streams) to the
//!   offloads of the **next** epoch, preserving the one-epoch contention
//!   lag that keeps epochs embarrassingly parallel.
//! * [`FailoverPolicy`] — what a shed request does: fail over to the
//!   least-loaded (or, under cost-aware dispatch, the cheapest viable)
//!   sibling region (paying an inter-region penalty), or fall back to
//!   on-device execution, charged at the device's local-only deployment
//!   option.
//! * [`Autoscaler`] — per-backend workload autoscaling: an EWMA-damped
//!   demand signal (utilization or queue depth per slot) is thresholded at
//!   each epoch barrier and the live slot count steps up or down within
//!   `[min_slots, max_slots]`, with a cooldown suppressing flapping.
//!   Provisioned slot-epochs are priced
//!   ([`BackendConfig::price_per_slot_epoch`]) into the report's
//!   fixed-point cost totals.
//! * [`DispatchPolicy`] — how arrivals spread across a region's backends:
//!   classic least-work-left water-filling, or **cost-aware**
//!   water-filling that weighs each backend's work-left by
//!   price × energy ([`BackendConfig::cost_weight`]), pushing load toward
//!   cheap pools at the cost of perfectly equalized completion times.
//!
//! All queue state advances deterministically at epoch barriers in fluid
//! form: arrivals are admitted as job counts, dispatched across backends by
//! (cost-weighted) water-filling, and each backend drains at the rate its
//! current batch size implies. The barrier phases are strictly ordered:
//! **drain (serve the epoch) → scale (autoscalers adjust slots) → publish
//! (waits/shed/cost signals from post-scale state)** — so the signals
//! devices read next epoch always reflect post-scale capacity.
//! [`CloudCapacity`] — the PR 2 configuration surface — is kept as the
//! degenerate single-backend, unbatched case and converts losslessly via
//! [`CloudServing::from`].

use crate::report::Histogram;
use lens_telemetry::{PhaseProbe, TraceEvent};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Which cloud model a fleet run uses ([`crate::FleetScenario`]'s
/// `fidelity` knob).
///
/// The fluid mode resolves whole epochs of offloads as job *quantities* at
/// the barrier — cheap and mean-accurate, but every request of an epoch
/// sees the same published wait, so the latency distribution has no cloud
/// tail. The per-request mode replays each offloaded request as its own
/// discrete event (arrival → queueing → batch admission → service →
/// completion) inside [`RegionMicrosim`], which is what p95/p99 reporting
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloudSimFidelity {
    /// Epoch-barrier fluid queues (the PR 3 model, and the default):
    /// arrivals are admitted as counts and drained at batch-amortized
    /// rates.
    #[default]
    Fluid,
    /// Discrete per-request microsimulation: every offloaded request gets
    /// its own arrival/batch/service/completion times, and the report
    /// carries exact per-request sojourn histograms with tail summaries.
    PerRequest,
}

/// Queueing discipline for a region's cloud slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Single class: every offloaded inference waits behind the full
    /// backlog.
    Fifo,
    /// Two classes: the given fraction of devices (chosen per-device,
    /// seeded) is high-priority and waits only behind other high-priority
    /// work; everyone else waits behind everything.
    Priority {
        /// Fraction of devices in the high-priority class, in `[0, 1]`.
        high_fraction: f64,
    },
}

/// Capacity description for the PR 2 single-queue cloud, applied per
/// region. Retained as the simple configuration surface: it converts into
/// a one-backend, unbatched [`CloudServing`] with identical drain
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudCapacity {
    /// Concurrent inference slots per region.
    pub slots_per_region: usize,
    /// Cloud-side service time per offloaded inference (ms).
    pub service_ms: f64,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
}

impl CloudCapacity {
    /// FIFO capacity with the given slots and per-inference service time.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_region` is zero or `service_ms` is not
    /// positive/finite.
    pub fn new(slots_per_region: usize, service_ms: f64) -> Self {
        assert!(slots_per_region > 0, "cloud needs at least one slot");
        assert!(
            service_ms.is_finite() && service_ms > 0.0,
            "service_ms must be positive and finite"
        );
        CloudCapacity {
            slots_per_region,
            service_ms,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Jobs one region can complete per millisecond.
    pub fn drain_rate_per_ms(&self) -> f64 {
        self.slots_per_region as f64 / self.service_ms
    }
}

/// When a backend's dynamic batcher closes a batch: at `max_batch` items,
/// or when the oldest queued item has lingered `linger_ms`, whichever
/// comes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single executor runs (≥ 1).
    pub max_batch: usize,
    /// Longest a request may wait for its batch to fill (ms, ≥ 0).
    pub linger_ms: f64,
}

impl BatchPolicy {
    /// No batching: every request is its own batch.
    pub fn none() -> Self {
        BatchPolicy {
            max_batch: 1,
            linger_ms: 0.0,
        }
    }

    /// A batcher closing at `max_batch` items or after `linger_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `linger_ms` is negative or
    /// non-finite.
    pub fn new(max_batch: usize, linger_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            linger_ms.is_finite() && linger_ms >= 0.0,
            "linger_ms must be non-negative and finite"
        );
        BatchPolicy {
            max_batch,
            linger_ms,
        }
    }
}

/// The demand signal an [`Autoscaler`] damps and thresholds at each epoch
/// barrier. Both are normalized **per slot**, so the same thresholds keep
/// meaning as the pool grows or shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingSignal {
    /// Fraction of the epoch each slot spent serving batches (target-
    /// utilization scaling). Can exceed 1 transiently under the
    /// per-request model, where a batch's whole service time is charged
    /// at close.
    Utilization,
    /// Queued jobs per slot at the barrier (queue-depth scaling).
    QueueDepth,
    /// Tail-latency targeting: the backend's **epoch-windowed** p99 cloud
    /// sojourn, normalized by the target (`p99 / target`), so the usual
    /// thresholds (e.g. up above 1.0, down below 0.5) read as fractions
    /// of the tail budget. Only the per-request microsim measures
    /// sojourns; the fluid tier degrades gracefully to the
    /// [`ScalingSignal::QueueDepth`] observation (fluid epochs have no
    /// per-request times to take a percentile of).
    TailLatency {
        /// The p99 sojourn target (µs, ≥ 1).
        target_us: u64,
    },
}

/// Per-backend workload autoscaling, evaluated once per epoch barrier
/// (after the epoch is served, before signals publish).
///
/// The state machine per backend: the observed [`ScalingSignal`] is
/// EWMA-damped (`damped ← α·observed + (1−α)·damped`); while a cooldown
/// is pending the slot count holds; otherwise `damped > scale_up` steps
/// the pool up by `step` and `damped < scale_down` steps it down, both
/// clamped to `[min_slots, max_slots]`, and any applied change re-arms the
/// cooldown. The per-request tier additionally never retires a busy
/// executor: scale-down removes idle slots only and retries at later
/// barriers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Autoscaler {
    /// Which demand signal drives scaling.
    pub signal: ScalingSignal,
    /// Damped-signal threshold above which the pool grows.
    pub scale_up: f64,
    /// Damped-signal threshold below which the pool shrinks.
    pub scale_down: f64,
    /// Barriers to hold after an applied scaling event (0 = react every
    /// barrier; larger values suppress flapping).
    pub cooldown_epochs: u32,
    /// Smallest slot count the pool may shrink to (≥ 1).
    pub min_slots: usize,
    /// Largest slot count the pool may grow to.
    pub max_slots: usize,
    /// Slots added or removed per scaling event.
    pub step: usize,
    /// EWMA damping factor in `(0, 1]` (1 = undamped, react to the raw
    /// signal).
    pub alpha: f64,
}

impl Autoscaler {
    /// An autoscaler on the given signal with thresholds and slot bounds;
    /// defaults: cooldown 1 epoch, step 1 slot, α = 0.5.
    pub fn new(
        signal: ScalingSignal,
        scale_up: f64,
        scale_down: f64,
        min_slots: usize,
        max_slots: usize,
    ) -> Self {
        Autoscaler {
            signal,
            scale_up,
            scale_down,
            cooldown_epochs: 1,
            min_slots,
            max_slots,
            step: 1,
            alpha: 0.5,
        }
    }

    /// Sets the post-scaling cooldown (barriers held after each event).
    pub fn with_cooldown(mut self, epochs: u32) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    /// Sets the slots added/removed per scaling event.
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step;
        self
    }

    /// Sets the EWMA damping factor.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Validates the autoscaler's own invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on non-finite or inverted
    /// thresholds, zero `min_slots`/`step`, inverted slot bounds, or an
    /// out-of-range `alpha`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.scale_up.is_finite() && self.scale_down.is_finite()) {
            return Err("autoscaler thresholds must be finite".to_string());
        }
        if self.scale_down >= self.scale_up {
            return Err("autoscaler scale_down must be below scale_up".to_string());
        }
        if self.min_slots == 0 {
            return Err("autoscaler min_slots must be at least 1".to_string());
        }
        if self.min_slots > self.max_slots {
            return Err("autoscaler min_slots must not exceed max_slots".to_string());
        }
        if self.step == 0 {
            return Err("autoscaler step must be at least 1".to_string());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("autoscaler alpha must be in (0, 1]".to_string());
        }
        if let ScalingSignal::TailLatency { target_us } = self.signal {
            if target_us == 0 {
                return Err("autoscaler tail-latency target_us must be at least 1".to_string());
            }
        }
        Ok(())
    }

    /// EWMA-damps the observed demand signal into the running estimate.
    fn damp(&self, previous: f64, observed: f64) -> f64 {
        self.alpha * observed + (1.0 - self.alpha) * previous
    }

    /// One barrier's shared bookkeeping: damp `observed` into `state`,
    /// honor a pending cooldown (decrementing it and holding the current
    /// count), and return the slot count the thresholds ask for. Both
    /// fidelity tiers run exactly this sequence; only the *application*
    /// differs (the fluid tier rescales its drain rate, the per-request
    /// tier retires idle executors only). Callers re-arm the cooldown via
    /// [`arm`](Autoscaler::arm) for the portion they actually applied.
    pub fn step(&self, state: &mut ScalerState, observed: f64, slots: usize) -> usize {
        state.demand_ewma = self.damp(state.demand_ewma, observed);
        if state.cooldown > 0 {
            state.cooldown -= 1;
            return slots;
        }
        self.target_slots(slots, state.demand_ewma)
    }

    /// Re-arms the cooldown after an applied scaling event.
    pub fn arm(&self, state: &mut ScalerState) {
        state.cooldown = self.cooldown_epochs;
    }

    /// The slot count the thresholds ask for, given the damped signal —
    /// the pure decision both fidelity modes share so they cannot drift.
    fn target_slots(&self, slots: usize, damped: f64) -> usize {
        if damped > self.scale_up {
            slots
                .saturating_add(self.step)
                .clamp(self.min_slots, self.max_slots)
        } else if damped < self.scale_down {
            slots
                .saturating_sub(self.step)
                .clamp(self.min_slots, self.max_slots)
        } else {
            slots.clamp(self.min_slots, self.max_slots)
        }
    }
}

/// Per-backend autoscaler bookkeeping shared (structurally) by both
/// fidelity tiers: the EWMA-damped demand estimate and the pending
/// cooldown. Advanced only through [`Autoscaler::step`] /
/// [`Autoscaler::arm`], so the fluid and per-request state machines
/// cannot diverge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalerState {
    /// The EWMA-damped demand estimate.
    pub demand_ewma: f64,
    /// Barriers left before the scaler may act again.
    pub cooldown: u32,
}

/// How a region spreads arrivals across its backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Water-fill so expected completion times equalize (the PR 3
    /// behavior, and the default).
    #[default]
    LeastWorkLeft,
    /// Water-fill by **price × energy × work-left**: each backend's
    /// work-left is weighed by [`BackendConfig::cost_weight`], so cheap
    /// pools absorb more load and the published [`RegionSignal`] carries
    /// the region's marginal serving cost — which failover then uses to
    /// shed toward the *cheapest* viable sibling.
    CostAware,
}

/// One pool of identical executors inside a region's serving tier, with an
/// affine batch cost: a batch of `b` items occupies one executor for
/// `base_service_ms + per_item_ms · b` milliseconds, so the per-item cost
/// is sub-linear in `b` and large batches amortize the fixed part.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendConfig {
    /// Display name (`"gpu"`, `"cpu"`, …), unique within the region.
    pub name: String,
    /// Concurrent batch executors in this pool (the initial count when an
    /// autoscaler is attached).
    pub slots: usize,
    /// Fixed cost per batch (ms) — the part batching amortizes.
    pub base_service_ms: f64,
    /// Marginal cost per batched item (ms).
    pub per_item_ms: f64,
    /// The dynamic batcher in front of this pool.
    pub batching: BatchPolicy,
    /// Price of keeping one slot provisioned for one epoch (arbitrary
    /// currency units; 0 = unpriced, the legacy behavior). Accrued into
    /// the report's fixed-point cost totals every barrier.
    pub price_per_slot_epoch: f64,
    /// Cloud-side energy per served job (mJ; 0 = unmodeled). Feeds the
    /// report's cloud-energy totals and the cost-aware dispatch weight.
    pub energy_per_job_mj: f64,
    /// Workload autoscaling for this pool (`None` = static slots).
    pub autoscaler: Option<Autoscaler>,
}

impl BackendConfig {
    /// An unbatched backend: `slots` executors at
    /// `base_service_ms + per_item_ms` per single-item request.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero, either cost is negative or non-finite,
    /// or the single-item service time `base_service_ms + per_item_ms` is
    /// not positive.
    pub fn new(name: &str, slots: usize, base_service_ms: f64, per_item_ms: f64) -> Self {
        assert!(slots > 0, "backend needs at least one slot");
        assert!(
            base_service_ms.is_finite() && base_service_ms >= 0.0,
            "base_service_ms must be non-negative and finite"
        );
        assert!(
            per_item_ms.is_finite() && per_item_ms >= 0.0,
            "per_item_ms must be non-negative and finite"
        );
        assert!(
            base_service_ms + per_item_ms > 0.0,
            "single-item service time must be positive"
        );
        BackendConfig {
            name: name.to_string(),
            slots,
            base_service_ms,
            per_item_ms,
            batching: BatchPolicy::none(),
            price_per_slot_epoch: 0.0,
            energy_per_job_mj: 0.0,
            autoscaler: None,
        }
    }

    /// Puts a dynamic batcher in front of the pool.
    pub fn with_batching(mut self, max_batch: usize, linger_ms: f64) -> Self {
        self.batching = BatchPolicy::new(max_batch, linger_ms);
        self
    }

    /// Prices one provisioned slot-epoch (validated at tier build).
    pub fn with_price(mut self, price_per_slot_epoch: f64) -> Self {
        self.price_per_slot_epoch = price_per_slot_epoch;
        self
    }

    /// Sets the cloud-side energy per served job (validated at tier
    /// build).
    pub fn with_energy(mut self, energy_per_job_mj: f64) -> Self {
        self.energy_per_job_mj = energy_per_job_mj;
        self
    }

    /// Attaches a workload autoscaler to this pool (validated at tier
    /// build; `slots` becomes the initial count and must sit within the
    /// autoscaler's bounds).
    pub fn with_autoscaler(mut self, autoscaler: Autoscaler) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Service time of one batch of (fluid) size `b` on one executor (ms).
    pub fn batch_service_ms(&self, b: f64) -> f64 {
        self.base_service_ms + self.per_item_ms * b
    }

    /// Jobs per millisecond **one slot** completes when every batch closes
    /// full. Live throughput is this times the current slot count.
    pub fn full_batch_rate_per_slot_ms(&self) -> f64 {
        let b = self.batching.max_batch as f64;
        b / self.batch_service_ms(b)
    }

    /// Jobs per millisecond this pool completes at its **configured**
    /// slot count when every batch closes full — the backend's peak
    /// throughput before any autoscaling.
    pub fn full_batch_rate_per_ms(&self) -> f64 {
        self.slots as f64 * self.full_batch_rate_per_slot_ms()
    }

    /// The cost-aware dispatch weight: price × energy, with unpriced
    /// (zero) components treated as a neutral 1 — so an unpriced tier
    /// under [`DispatchPolicy::CostAware`] degenerates to plain
    /// least-work-left.
    pub fn cost_weight(&self) -> f64 {
        let neutral = |v: f64| if v > 0.0 { v } else { 1.0 };
        neutral(self.price_per_slot_epoch) * neutral(self.energy_per_job_mj)
    }
}

/// Load shedding at a region's front door. The controller looks at the
/// queue state at each epoch barrier and publishes the fraction of the
/// *next* epoch's offloads to shed, sized so that admitted work drains at
/// the configured bound in steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit everything (the PR 2 behavior).
    Open,
    /// Shed when the region's total backlog exceeds `max_jobs`.
    QueueDepth {
        /// Backlog bound (jobs) above which arrivals are shed.
        max_jobs: f64,
    },
    /// Shed when the low-priority-class wait exceeds `max_wait_ms`.
    Deadline {
        /// Wait bound (ms) above which arrivals are shed.
        max_wait_ms: f64,
    },
}

impl AdmissionPolicy {
    /// The fraction of next-epoch offloads to shed, given the post-drain
    /// queue state: `0` while within bounds, approaching `1` as the
    /// overload grows (`1 − bound/observed`, the fluid fraction that
    /// brings admitted load back to the bound in steady state).
    pub fn shed_fraction(&self, depth_jobs: f64, wait_low_ms: f64) -> f64 {
        let overload = |observed: f64, bound: f64| {
            if observed <= bound || observed <= 0.0 {
                0.0
            } else {
                (1.0 - bound / observed).clamp(0.0, 1.0)
            }
        };
        match *self {
            AdmissionPolicy::Open => 0.0,
            AdmissionPolicy::QueueDepth { max_jobs } => overload(depth_jobs, max_jobs),
            AdmissionPolicy::Deadline { max_wait_ms } => overload(wait_low_ms, max_wait_ms),
        }
    }
}

/// EWMA-damps a published shed fraction toward the controller's raw
/// target: the raw `1 − bound/observed` over-corrects under the one-epoch
/// lag (bang-bang oscillation), so both fidelities halve toward it each
/// barrier and snap the geometric tail to zero so open tiers publish
/// exact 0. Shared so the fluid and per-request controllers cannot drift.
fn damp_shed_fraction(previous: f64, target: f64) -> f64 {
    let damped = 0.5 * (previous + target);
    if damped < 1e-6 {
        0.0
    } else {
        damped
    }
}

/// Where a shed request goes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailoverPolicy {
    /// Straight back to the device: the request runs the device's
    /// local-only deployment option (charged at that option's latency and
    /// energy — see `DeploymentPlanner::local_fallback`).
    ToDevice,
    /// Try the sibling region with the smallest published wait first,
    /// paying `penalty_ms` of inter-region latency; if that region is
    /// shedding too (per its own published fraction), fall back to the
    /// device.
    SiblingRegion {
        /// Extra round-trip latency charged to failed-over requests (ms).
        penalty_ms: f64,
    },
}

/// A region's full serving-tier description: heterogeneous backends, the
/// queue discipline, admission control, and failover. Every region in a
/// scenario hosts one instance of this template.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudServing {
    /// The backend pools (at least one).
    pub backends: Vec<BackendConfig>,
    /// Queue discipline, shared by all backends in the region.
    pub discipline: QueueDiscipline,
    /// Load shedding at the region's front door.
    pub admission: AdmissionPolicy,
    /// Where shed requests go.
    pub failover: FailoverPolicy,
    /// How arrivals spread across the region's backends.
    pub dispatch: DispatchPolicy,
}

impl CloudServing {
    /// A serving tier with the given backends, FIFO discipline, open
    /// admission, to-device failover, and least-work-left dispatch.
    pub fn new(backends: Vec<BackendConfig>) -> Self {
        CloudServing {
            backends,
            discipline: QueueDiscipline::Fifo,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
            dispatch: DispatchPolicy::LeastWorkLeft,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the failover policy.
    pub fn with_failover(mut self, failover: FailoverPolicy) -> Self {
        self.failover = failover;
        self
    }

    /// Sets the dispatch policy.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Validates the cross-field constraints a scenario build enforces.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the tier has no backends,
    /// duplicate backend names, a non-positive admission bound or failover
    /// penalty, a non-finite/negative price or energy, or an invalid
    /// autoscaler (bad thresholds/bounds, or initial slots outside them).
    pub fn validate(&self) -> Result<(), String> {
        if self.backends.is_empty() {
            return Err("serving tier needs at least one backend".to_string());
        }
        for (i, b) in self.backends.iter().enumerate() {
            if self.backends[..i].iter().any(|o| o.name == b.name) {
                return Err(format!(
                    "duplicate backend name {:?} in serving tier",
                    b.name
                ));
            }
            if !(b.price_per_slot_epoch.is_finite() && b.price_per_slot_epoch >= 0.0) {
                return Err(format!(
                    "backend {:?} price_per_slot_epoch must be non-negative and finite",
                    b.name
                ));
            }
            if !(b.energy_per_job_mj.is_finite() && b.energy_per_job_mj >= 0.0) {
                return Err(format!(
                    "backend {:?} energy_per_job_mj must be non-negative and finite",
                    b.name
                ));
            }
            if let Some(auto) = &b.autoscaler {
                auto.validate()
                    .map_err(|why| format!("backend {:?}: {why}", b.name))?;
                if !(auto.min_slots..=auto.max_slots).contains(&b.slots) {
                    return Err(format!(
                        "backend {:?} initial slots {} outside autoscaler bounds [{}, {}]",
                        b.name, b.slots, auto.min_slots, auto.max_slots
                    ));
                }
            }
        }
        // Cost-aware dispatch compares cost weights across backends, and
        // an unset (zero) component silently counts as the neutral 1 —
        // real prices must not be ranked against that placeholder, so a
        // tier prices each component everywhere or nowhere.
        if self.dispatch == DispatchPolicy::CostAware {
            type IsSet = fn(&BackendConfig) -> bool;
            let components: [(&str, IsSet); 2] = [
                ("price_per_slot_epoch", |b| b.price_per_slot_epoch > 0.0),
                ("energy_per_job_mj", |b| b.energy_per_job_mj > 0.0),
            ];
            for (component, set) in components {
                let priced = self.backends.iter().filter(|b| set(b)).count();
                if priced != 0 && priced != self.backends.len() {
                    return Err(format!(
                        "cost-aware dispatch needs {component} set on every backend or on none \
                         ({priced} of {} set): unset components count as the neutral weight 1 \
                         and would be ranked against real values",
                        self.backends.len()
                    ));
                }
            }
        }
        match self.admission {
            AdmissionPolicy::QueueDepth { max_jobs }
                if !(max_jobs.is_finite() && max_jobs > 0.0) =>
            {
                return Err("admission max_jobs must be positive and finite".to_string());
            }
            AdmissionPolicy::Deadline { max_wait_ms }
                if !(max_wait_ms.is_finite() && max_wait_ms > 0.0) =>
            {
                return Err("admission max_wait_ms must be positive and finite".to_string());
            }
            _ => {}
        }
        if let FailoverPolicy::SiblingRegion { penalty_ms } = self.failover {
            if !(penalty_ms.is_finite() && penalty_ms >= 0.0) {
                return Err("failover penalty_ms must be non-negative and finite".to_string());
            }
        }
        Ok(())
    }
}

impl From<CloudCapacity> for CloudServing {
    /// The PR 2 single-queue cloud as a degenerate serving tier: one
    /// unbatched backend whose drain rate is exactly
    /// `slots_per_region / service_ms`.
    fn from(capacity: CloudCapacity) -> Self {
        CloudServing {
            backends: vec![BackendConfig::new(
                "default",
                capacity.slots_per_region,
                capacity.service_ms,
                0.0,
            )],
            discipline: capacity.discipline,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
            dispatch: DispatchPolicy::LeastWorkLeft,
        }
    }
}

/// The barrier-published state shards read for a whole epoch (one-epoch
/// contention lag): per-class waits, the admission controller's shed
/// fraction, and the region's marginal serving cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionSignal {
    /// Wait (ms) a high-priority arrival experiences.
    pub wait_high_ms: f64,
    /// Wait (ms) a low-priority (FIFO-class) arrival experiences.
    pub wait_low_ms: f64,
    /// Fraction of next-epoch offloads the admission controller sheds.
    pub shed_fraction: f64,
    /// The [`BackendConfig::cost_weight`] of the backend the region's
    /// *next* arrival would be dispatched to — what one more job costs to
    /// serve here. Load-dependent: a region whose cheap pool is swamped
    /// dispatches (and therefore prices) marginal work on its expensive
    /// pool, so identically configured regions publish different marginal
    /// costs as their queues diverge. Under
    /// [`DispatchPolicy::CostAware`], failover sheds to the sibling with
    /// the smallest marginal cost (wait breaks ties).
    pub marginal_cost: f64,
    /// The region's **epoch-windowed** p99 cloud sojourn (ms), when the
    /// tier measured one. Only the per-request microsim has per-request
    /// sojourn times; the fluid tier publishes `None` — explicitly *no
    /// signal*, never a stale zero — and device-side tail policies must
    /// treat `None` as "don't react". An idle microsim epoch (no
    /// completions) republishes the last *measured* p99 as hysteresis: a
    /// region that shed its whole crowd keeps warning retreated devices
    /// instead of inviting the herd back at once. `None` therefore means
    /// "never measured", not "idle lately".
    pub p99_ms: Option<f64>,
}

impl RegionSignal {
    /// The wait for a device's priority class.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        if high_priority {
            self.wait_high_ms
        } else {
            self.wait_low_ms
        }
    }
}

/// Per-backend fluid queue state.
#[derive(Debug, Clone, PartialEq)]
struct BackendQueue {
    backlog_high: f64,
    backlog_low: f64,
    /// Jobs dispatched to this backend in the current epoch (for the
    /// linger fill-rate estimate).
    epoch_arrivals: f64,
    /// Executor slots currently provisioned (autoscaled within the
    /// configured bounds; equals the configured count when static).
    slots_live: usize,
    /// Shared autoscaler bookkeeping (EWMA estimate + cooldown).
    scaler: ScalerState,
    /// Per-slot busy time accumulated in the current epoch (ms) — the
    /// utilization observation the autoscaler damps.
    epoch_busy_ms: f64,
    /// Drain rate (jobs/ms) realized in the last [`RegionServing::drain`],
    /// used to publish waits. Starts at the unbatched rate.
    rate_per_ms: f64,
    /// Expected extra wait from the batcher lingering for items (ms),
    /// realized in the last drain.
    linger_wait_ms: f64,
    // Cumulative serving stats.
    served_jobs: f64,
    batches: f64,
    busy_ms: f64,
    batch_sizes: Histogram,
    /// Slot count during each served epoch, recorded at the barrier.
    slot_timeline: Vec<u32>,
    /// Applied scaling events (up or down).
    scale_events: u64,
}

/// How many bins backend batch-size histograms carry (width 1.0 — batch
/// sizes above this land in the overflow bucket).
const BATCH_HIST_BINS: usize = 1_024;

/// Per-request sojourn histogram resolution (ms per bin) — matches the
/// engine's end-to-end latency binning so tails line up across views.
pub(crate) const SOJOURN_BIN_MS: f64 = 10.0;
/// Bins in per-request sojourn histograms (overflow beyond 20 s).
pub(crate) const SOJOURN_BINS: usize = 2_000;

/// Cumulative serving stats for one backend, as accumulated across a
/// run's epoch barriers ([`RegionServing::backend_stats`]); the engine
/// stamps these with the region name and horizon-normalized utilization
/// to form the report's `BackendReport`s.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// Backend name from the serving tier.
    pub name: String,
    /// Configured executor slots (the initial count under autoscaling;
    /// see `slot_timeline` for the live trajectory).
    pub slots: usize,
    /// Jobs completed (fluid count).
    pub served_jobs: f64,
    /// Batches closed (fluid count).
    pub batches: f64,
    /// Per-slot busy time accumulated over the run (ms).
    pub busy_ms: f64,
    /// Distribution of closed batch sizes (width-1 bins).
    pub batch_sizes: Histogram,
    /// Per-request cloud sojourn times (arrival → completion, ms). Only
    /// the per-request microsimulation populates this; the fluid tier
    /// leaves it empty (fluid epochs have no per-request times).
    pub sojourn_ms: Histogram,
    /// Slot count during each served epoch (constant without an
    /// autoscaler).
    pub slot_timeline: Vec<u32>,
    /// Applied autoscaling events over the run.
    pub scale_events: u64,
    /// Provisioned cost, exact in fixed-point micro-units:
    /// `Σ_epochs slots · price_per_slot_epoch`.
    pub cost_fp: i128,
    /// Cloud-side energy over the run (mJ):
    /// `served jobs · energy_per_job_mj`.
    pub cloud_energy_mj: f64,
}

/// One region's deterministic serving-tier state: per-backend fluid queues
/// fed by least-work-left dispatch, drained at batch-amortized rates, with
/// cumulative per-backend stats for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionServing {
    serving: CloudServing,
    queues: Vec<BackendQueue>,
    /// EWMA-damped shed fraction: the raw `1 − bound/observed` target
    /// over-corrects under the one-epoch lag (a fully-shed epoch drains
    /// the queue, the wait crashes to zero, the next epoch floods —
    /// bang-bang oscillation); halving toward the target each barrier
    /// settles near the fluid fixed point instead.
    shed_fraction: f64,
}

impl RegionServing {
    /// An empty serving tier instantiated from the region template.
    ///
    /// # Panics
    ///
    /// Panics if `serving` fails [`CloudServing::validate`].
    pub fn new(serving: &CloudServing) -> Self {
        if let Err(why) = serving.validate() {
            panic!("invalid serving tier: {why}");
        }
        let queues = serving
            .backends
            .iter()
            .map(|b| BackendQueue {
                backlog_high: 0.0,
                backlog_low: 0.0,
                epoch_arrivals: 0.0,
                slots_live: b.slots,
                scaler: ScalerState::default(),
                epoch_busy_ms: 0.0,
                rate_per_ms: b.slots as f64 * 1.0 / b.batch_service_ms(1.0),
                linger_wait_ms: 0.0,
                served_jobs: 0.0,
                batches: 0.0,
                busy_ms: 0.0,
                batch_sizes: Histogram::new(1.0, BATCH_HIST_BINS),
                slot_timeline: Vec::new(),
                scale_events: 0,
            })
            .collect();
        RegionServing {
            serving: serving.clone(),
            queues,
            shed_fraction: 0.0,
        }
    }

    /// The serving-tier template this region runs.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Admits one epoch's offloaded inferences (split by priority class)
    /// and dispatches them across backends by least-work-left
    /// water-filling: arrivals fill backends so their expected completion
    /// times equalize, which is what an ideal least-loaded load balancer
    /// achieves in the fluid limit.
    pub fn admit(&mut self, high: u64, low: u64) {
        let total = (high + low) as f64;
        if total <= 0.0 {
            return;
        }
        let assignments = self.water_fill(total);
        let high_share = high as f64 / total;
        for (queue, a) in self.queues.iter_mut().zip(&assignments) {
            queue.backlog_high += a * high_share;
            queue.backlog_low += a * (1.0 - high_share);
            queue.epoch_arrivals += a;
        }
    }

    /// Splits `total` arriving jobs across backends so that the resulting
    /// completion times `(backlog_i + a_i) / capacity_i` equalize where
    /// possible (classic water-filling over per-backend peak rates at the
    /// **live** slot counts). Under [`DispatchPolicy::CostAware`] each
    /// backend's capacity is divided by its price × energy
    /// [`BackendConfig::cost_weight`], which equalizes *cost-weighted*
    /// completion `w_i · (backlog_i + a_i) / capacity_i` instead — cheap
    /// backends sit lower in the cost-time landscape and absorb more of
    /// the flow.
    fn water_fill(&self, total: f64) -> Vec<f64> {
        let cost_aware = self.serving.dispatch == DispatchPolicy::CostAware;
        let caps: Vec<f64> = self
            .serving
            .backends
            .iter()
            .zip(&self.queues)
            .map(|(b, q)| {
                let cap = q.slots_live as f64 * b.full_batch_rate_per_slot_ms();
                if cost_aware {
                    cap / b.cost_weight()
                } else {
                    cap
                }
            })
            .collect();
        if caps.len() == 1 {
            return vec![total];
        }
        let depths: Vec<f64> = self
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        // Sort backend indices by current completion time (depth/cap).
        let mut order: Vec<usize> = (0..caps.len()).collect();
        order.sort_by(|&a, &b| {
            (depths[a] / caps[a])
                .partial_cmp(&(depths[b] / caps[b]))
                .expect("finite completion times")
                .then(a.cmp(&b))
        });
        // Raise the water level: each step pulls the next backend's
        // completion time into the active set, until the arrivals are
        // absorbed. The last step's `next_level` is ∞, so the loop always
        // terminates with `remaining` fully absorbed.
        let mut remaining = total;
        let mut active_cap = 0.0;
        let mut level = depths[order[0]] / caps[order[0]];
        for (k, &i) in order.iter().enumerate() {
            active_cap += caps[i];
            let next_level = if k + 1 < order.len() {
                let j = order[k + 1];
                depths[j] / caps[j]
            } else {
                f64::INFINITY
            };
            let absorbable = (next_level - level) * active_cap;
            if absorbable >= remaining {
                level += remaining / active_cap;
                break;
            }
            remaining -= absorbable;
            level = next_level;
        }
        // Everyone at or below the water level gets topped up to it.
        let mut assignments: Vec<f64> = (0..caps.len())
            .map(|j| (caps[j] * level - depths[j]).max(0.0))
            .collect();
        // Conserve jobs exactly: hand the float residual (≈ 1 ulp of
        // rounding per step) to the least-loaded backend.
        let assigned: f64 = assignments.iter().sum();
        assignments[order[0]] += total - assigned;
        assignments
    }

    /// Drains every backend for `epoch_ms` of wall-clock. Each backend's
    /// batcher closes batches of the fluid size its backlog and arrival
    /// rate imply (`min(max_batch, max(1, depth/slots, rate·linger))`),
    /// serving high-priority work first, and records batch-close and
    /// utilization stats.
    pub fn drain(&mut self, epoch_ms: f64) {
        self.drain_probed(epoch_ms, 0, 0, &mut PhaseProbe::disabled());
    }

    /// [`drain`](RegionServing::drain) with telemetry: batch closes are
    /// counted into `probe` and emitted as [`TraceEvent::BatchClose`]
    /// aggregates stamped at `now_us` (the epoch end — the fluid model
    /// has no per-batch close instants).
    pub fn drain_probed(
        &mut self,
        epoch_ms: f64,
        now_us: u64,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        for (backend_idx, (config, queue)) in self
            .serving
            .backends
            .iter()
            .zip(&mut self.queues)
            .enumerate()
        {
            let slots = queue.slots_live as f64;
            let depth = queue.backlog_high + queue.backlog_low;
            let arrival_rate = queue.epoch_arrivals / epoch_ms;
            let max_batch = config.batching.max_batch as f64;
            let b = if config.batching.max_batch <= 1 {
                1.0
            } else {
                // Two fluid regimes: a backlog carried over from earlier
                // epochs closes batches straight off the queue, while in
                // the keeping-up regime batches grow to whatever the
                // arrival flow accumulates within the linger window.
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let backlog_fill = carried / slots;
                let linger_fill = arrival_rate * config.batching.linger_ms;
                backlog_fill.max(linger_fill).clamp(1.0, max_batch)
            };
            let batch_ms = config.batch_service_ms(b);
            let rate = slots * b / batch_ms;
            let budget = rate * epoch_ms;
            let served_high = queue.backlog_high.min(budget);
            queue.backlog_high -= served_high;
            let served_low = queue.backlog_low.min(budget - served_high);
            queue.backlog_low -= served_low;
            let served = served_high + served_low;

            // The extra wait the batcher itself adds: batches fed from a
            // standing backlog close instantly, but batches filled from
            // the arrival flow make items wait on average half the fill
            // time (bounded by the linger window). Scale by the fraction
            // of the batch the flow must supply.
            queue.linger_wait_ms = if config.batching.max_batch <= 1 {
                0.0
            } else {
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let from_flow = (1.0 - carried / (b * slots)).clamp(0.0, 1.0);
                let fill_ms = if arrival_rate > 0.0 {
                    (b / arrival_rate).min(config.batching.linger_ms)
                } else {
                    config.batching.linger_ms
                };
                from_flow * fill_ms / 2.0
            };

            let batches = if b > 0.0 { served / b } else { 0.0 };
            queue.rate_per_ms = rate;
            queue.served_jobs += served;
            queue.batches += batches;
            queue.epoch_busy_ms = batches * batch_ms / slots;
            queue.busy_ms += queue.epoch_busy_ms;
            let closed = batches.round() as u64;
            if closed > 0 {
                queue.batch_sizes.record_n(b, closed);
                if probe.is_enabled() {
                    probe.on_batches(closed);
                    probe.emit(TraceEvent::BatchClose {
                        time_us: now_us,
                        region,
                        backend: backend_idx as u64,
                        batches: closed,
                        size_milli: (b * 1000.0).round() as u64,
                    });
                }
            }
            queue.epoch_arrivals = 0.0;
        }
    }

    /// Runs the autoscalers at the epoch barrier — **after**
    /// [`drain`](RegionServing::drain) served the epoch and **before**
    /// [`publish`](RegionServing::publish), so the published signal
    /// reflects post-scale capacity. Records the slot-count timeline for
    /// the epoch just served, EWMA-damps each backend's demand signal,
    /// and steps the live slot count within the configured bounds
    /// (honoring the cooldown). The realized drain rate is rescaled with
    /// the slot count so post-scale waits price the new capacity.
    pub fn scale(&mut self, epoch_ms: f64) {
        self.scale_probed(epoch_ms, 0, 0, &mut PhaseProbe::disabled());
    }

    /// [`scale`](RegionServing::scale) with telemetry: every applied
    /// autoscaler step is emitted as a [`TraceEvent::ScalingStep`].
    pub fn scale_probed(
        &mut self,
        epoch_ms: f64,
        now_us: u64,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        for (backend_idx, (config, queue)) in self
            .serving
            .backends
            .iter()
            .zip(&mut self.queues)
            .enumerate()
        {
            queue.slot_timeline.push(queue.slots_live as u32);
            if let Some(auto) = &config.autoscaler {
                let observed = match auto.signal {
                    ScalingSignal::Utilization => {
                        if epoch_ms > 0.0 {
                            queue.epoch_busy_ms / epoch_ms
                        } else {
                            0.0
                        }
                    }
                    // The fluid tier measures no per-request sojourns, so
                    // tail targeting degrades gracefully to the queue-depth
                    // observation (same EWMA/cooldown state machine).
                    ScalingSignal::QueueDepth | ScalingSignal::TailLatency { .. } => {
                        (queue.backlog_high + queue.backlog_low) / queue.slots_live as f64
                    }
                };
                let target = auto.step(&mut queue.scaler, observed, queue.slots_live);
                if target != queue.slots_live {
                    if probe.is_enabled() {
                        probe.emit(TraceEvent::ScalingStep {
                            time_us: now_us,
                            region,
                            backend: backend_idx as u64,
                            from_slots: queue.slots_live as u64,
                            to_slots: target as u64,
                        });
                    }
                    queue.rate_per_ms *= target as f64 / queue.slots_live as f64;
                    queue.slots_live = target;
                    auto.arm(&mut queue.scaler);
                    queue.scale_events += 1;
                }
            }
            queue.epoch_busy_ms = 0.0;
        }
    }

    /// Publishes the barrier signal for the next epoch: updates the
    /// admission controller's damped shed fraction from the **post-scale**
    /// queue state (call after [`scale`](RegionServing::scale)) and
    /// returns the signal.
    pub fn publish(&mut self) -> RegionSignal {
        let target = self
            .serving
            .admission
            .shed_fraction(self.depth(), self.wait_ms(false));
        self.shed_fraction = damp_shed_fraction(self.shed_fraction, target);
        self.signal()
    }

    /// The wait (ms) a new arrival of the given class experiences: the
    /// least-loaded backend's backlog-ahead drain time, plus that
    /// backend's batcher linger.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        self.queues
            .iter()
            .map(|q| {
                let ahead = if high_priority {
                    q.backlog_high
                } else {
                    q.backlog_high + q.backlog_low
                };
                ahead / q.rate_per_ms + q.linger_wait_ms
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Total queued jobs across all backends.
    pub fn depth(&self) -> f64 {
        self.queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .sum()
    }

    /// Live slot counts, backend order (metrics sampling).
    pub fn live_slots(&self) -> Vec<u64> {
        self.queues.iter().map(|q| q.slots_live as u64).collect()
    }

    /// The barrier signal shards read next epoch: per-class waits, the
    /// admission controller's damped shed fraction, and the region's
    /// marginal serving cost.
    pub fn signal(&self) -> RegionSignal {
        RegionSignal {
            wait_high_ms: self.wait_ms(true),
            wait_low_ms: self.wait_ms(false),
            shed_fraction: self.shed_fraction,
            marginal_cost: self.marginal_cost(),
            // Fluid epochs have no per-request sojourns: the tail channel
            // is explicitly silent, never a stale zero.
            p99_ms: None,
        }
    }

    /// The price × energy weight of the backend the next arrival would be
    /// dispatched to: the backend with the lowest (cost-weighted, under
    /// [`DispatchPolicy::CostAware`]) completion level — the same
    /// ordering [`water_fill`](Self::water_fill) tops up first. Level
    /// ties break toward the cheaper backend, so an idle tier publishes
    /// its cheapest pool's weight.
    fn marginal_cost(&self) -> f64 {
        let cost_aware = self.serving.dispatch == DispatchPolicy::CostAware;
        self.serving
            .backends
            .iter()
            .zip(&self.queues)
            .map(|(b, q)| {
                let weight = b.cost_weight();
                let cap = q.slots_live as f64 * b.full_batch_rate_per_slot_ms();
                let mut level = (q.backlog_high + q.backlog_low) / cap;
                if cost_aware {
                    level *= weight;
                }
                (level, weight)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite levels and weights"))
            .map(|(_, weight)| weight)
            .expect("tier has at least one backend")
    }

    /// Per-backend cumulative stats, in backend order.
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.serving
            .backends
            .iter()
            .zip(&self.queues)
            .map(|(b, q)| BackendStats {
                name: b.name.clone(),
                slots: b.slots,
                served_jobs: q.served_jobs,
                batches: q.batches,
                busy_ms: q.busy_ms,
                batch_sizes: q.batch_sizes.clone(),
                sojourn_ms: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
                slot_timeline: q.slot_timeline.clone(),
                scale_events: q.scale_events,
                cost_fp: provision_cost_fp(&q.slot_timeline, b.price_per_slot_epoch),
                cloud_energy_mj: q.served_jobs * b.energy_per_job_mj,
            })
            .collect()
    }
}

/// Exact fixed-point provisioned cost: `Σ_epochs slots · price`, summed
/// in micro-units so shard merging and reruns are bit-stable.
fn provision_cost_fp(timeline: &[u32], price_per_slot_epoch: f64) -> i128 {
    timeline
        .iter()
        .map(|&slots| crate::report::to_fp(slots as f64 * price_per_slot_epoch))
        .fold(0i128, i128::saturating_add)
}

impl fmt::Display for RegionServing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serving tier: {} backend(s), {:.1} jobs queued, wait {:.1} ms",
            self.queues.len(),
            self.depth(),
            self.wait_ms(false)
        )
    }
}

/// One offloaded inference inside the per-request microsimulation — the
/// event a device contributes at its arrival time, plus the bookkeeping
/// the engine needs to finish the record once the request completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadRequest {
    /// Arrival time at the region's front door (µs since run start).
    pub arrival_us: u64,
    /// Global device id — with `arrival_us` and `stage` this forms the
    /// unique, shard-count-invariant sort key the barrier merges
    /// requests by.
    pub device_id: u64,
    /// Pipeline stage (1-based). Shards always emit stage 1; the
    /// barrier spawns stages 2.. when the scenario carries a staged
    /// [`crate::PipelineSpec`]. Monolithic scenarios only ever see 1.
    /// Stage-1 keys are unique fleet-wide, and the stage disambiguates
    /// a chained arrival landing on the same `(arrival_us, device_id)`
    /// as a fresh stage-1 request; the one remaining tie — two
    /// same-device requests finishing in the same batch and chaining to
    /// identical arrivals — is resolved FIFO by the barrier's stable
    /// sort, in shard-invariant completion order.
    pub stage: u32,
    /// Whether the device is in the high-priority class.
    pub high_priority: bool,
    /// Origin region index (for the report's per-region breakdown; it
    /// differs from the serving region when the request failed over).
    pub origin_region: u32,
    /// Whether this request reached the serving region via failover.
    pub failed_over: bool,
    /// Device-side latency (ms): comm + compute, *without* any cloud
    /// queueing — the microsim supplies that part.
    pub base_latency_ms: f64,
    /// Edge energy of the inference (mJ).
    pub energy_mj: f64,
    /// Whether the device switched deployment options on this inference.
    pub switched: bool,
}

/// A finished request from [`RegionMicrosim`]: the original request plus
/// where and how long it was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// The request as admitted.
    pub request: OffloadRequest,
    /// Index of the backend that served it.
    pub backend: u32,
    /// Cloud sojourn (arrival → batch completion, ms).
    pub sojourn_ms: f64,
    /// Batch completion instant (µs since run start) — the integer the
    /// barrier chains the next pipeline stage's arrival from
    /// (`sojourn_ms` is derived from it, never the other way around).
    pub completion_us: u64,
}

/// Timer-event kinds in the microsim heap. Slot-free events sort before
/// linger expiries at the same microsecond so a freed executor is visible
/// to the batcher that was waiting on it.
const EVENT_SLOT_FREE: u8 = 0;
const EVENT_LINGER: u8 = 1;

/// Per-backend discrete state inside [`RegionMicrosim`].
#[derive(Debug, Clone)]
struct MicroBackend {
    queue_high: VecDeque<OffloadRequest>,
    queue_low: VecDeque<OffloadRequest>,
    /// When each executor slot becomes free (µs), as a min-heap of
    /// `(free_us, slot_id)`: the heap's size is the **live** slot count,
    /// its peek the earliest-free executor, and autoscaling pushes and
    /// pops entries. Ids only break same-microsecond ties (and do so
    /// deterministically); capacity semantics live entirely in the times
    /// and the count, so every per-arrival question — "when does the
    /// next executor open?" — is a peek instead of the linear scan that
    /// used to dominate large autoscaled tiers.
    slot_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Next id to hand a scale-up slot (monotone, never reused).
    next_slot_id: u32,
    /// Shared autoscaler bookkeeping (EWMA estimate + cooldown).
    scaler: ScalerState,
    /// `busy_us` as of the previous barrier — the delta is the epoch's
    /// utilization observation.
    busy_us_at_barrier: u64,
    // Cumulative serving stats.
    served_requests: u64,
    batches: u64,
    /// Total executor-occupied time across all slots (µs).
    busy_us: u64,
    batch_sizes: Histogram,
    sojourn_ms: Histogram,
    /// Sojourns completed since the last barrier — the epoch-windowed tail
    /// the [`ScalingSignal::TailLatency`] autoscaler observes, and the
    /// *only* histogram the dispatch hot loop records into; the barrier
    /// folds it into the cumulative and region-level views, then resets
    /// it (the `busy_us_at_barrier` idiom for histograms).
    epoch_sojourn: Histogram,
    /// [`BackendConfig::full_batch_rate_per_slot_ms`], cached — the value
    /// is a pure function of the static config, and the per-arrival
    /// least-work scan would otherwise recompute its divisions for every
    /// backend on every offload.
    rate_per_slot_ms: f64,
    /// The batcher's linger window in µs, cached off the static config
    /// for the same reason.
    linger_us: u64,
    /// Time of this backend's pending linger wakeup (`u64::MAX` = none).
    /// At most one is ever in flight: the linger deadline only moves
    /// later (FIFO queue fronts only advance), so an armed earlier
    /// wakeup always fires in time to re-check and re-arm — and without
    /// the dedup every arrival into a still-filling batcher would push
    /// another stale wakeup, scaling timer pops with the arrival rate
    /// instead of the batch rate.
    linger_event_us: u64,
    /// Slot count during each served epoch, recorded at the barrier.
    slot_timeline: Vec<u32>,
    /// Applied scaling events (up or down).
    scale_events: u64,
}

impl MicroBackend {
    fn queued(&self) -> usize {
        self.queue_high.len() + self.queue_low.len()
    }

    /// Arrival time of the oldest waiting request (µs), if any.
    fn oldest_arrival_us(&self) -> Option<u64> {
        match (self.queue_high.front(), self.queue_low.front()) {
            (Some(h), Some(l)) => Some(h.arrival_us.min(l.arrival_us)),
            (Some(h), None) => Some(h.arrival_us),
            (None, Some(l)) => Some(l.arrival_us),
            (None, None) => None,
        }
    }

    /// Live executor count (autoscaling adds and retires entries).
    fn live_slots(&self) -> usize {
        self.slot_heap.len()
    }

    /// When the earliest-free executor opens up (µs).
    fn earliest_free_us(&self) -> u64 {
        self.slot_heap
            .peek()
            .expect("a backend keeps ≥ 1 slot")
            .0
             .0
    }

    /// Occupies the earliest-free executor until `completion_us`.
    fn occupy_earliest(&mut self, completion_us: u64) {
        let Reverse((_, id)) = self.slot_heap.pop().expect("a backend keeps ≥ 1 slot");
        self.slot_heap.push(Reverse((completion_us, id)));
    }

    /// Adds `n` executors, free at `now_us`.
    fn add_slots(&mut self, n: usize, now_us: u64) {
        for _ in 0..n {
            self.slot_heap.push(Reverse((now_us, self.next_slot_id)));
            self.next_slot_id += 1;
        }
    }

    /// Retires up to `max` **idle** executors (free at or before
    /// `now_us`) and returns how many actually went — an in-flight batch
    /// is never killed, so a busy tier may retire fewer than asked.
    fn retire_idle(&mut self, max: usize, now_us: u64) -> usize {
        let mut retired = 0;
        while retired < max
            && self
                .slot_heap
                .peek()
                .is_some_and(|&Reverse((t, _))| t <= now_us)
        {
            self.slot_heap.pop();
            retired += 1;
        }
        retired
    }
}

/// One region's **per-request** serving-tier state: every offloaded
/// request is a discrete event with its own arrival, queueing,
/// batch-admission, service-start, and completion times.
///
/// The microsim advances through an event heap keyed by integer
/// microseconds. At equal timestamps, slot-free events run before
/// arrivals and arrivals before linger expiries, and all same-microsecond
/// arrivals are enqueued before any batch closes — so simultaneous
/// arrivals can share a batch and the schedule is a pure function of the
/// merged, `(arrival_us, device_id)`-sorted request stream (the
/// shard-count-invariance the determinism contract needs).
///
/// Batch assembly per backend: a batch closes when a slot is free **and**
/// either `max_batch` requests wait or the oldest waiting request has
/// lingered `linger_ms` (zero linger ⇒ close immediately, so unbatched
/// backends serve single-request batches). High-priority requests fill
/// batches first under the priority discipline. A closed batch of `b`
/// requests occupies its executor for `base_service_ms + per_item_ms · b`,
/// and every member completes at the batch's completion time.
#[derive(Debug, Clone)]
pub struct RegionMicrosim {
    serving: CloudServing,
    backends: Vec<MicroBackend>,
    /// Pending timer events: (time µs, kind, backend index).
    heap: BinaryHeap<Reverse<(u64, u8, u32)>>,
    /// EWMA-damped shed fraction, same controller as the fluid tier.
    shed_fraction: f64,
    /// Region-level sojourns completed since the last barrier — the
    /// epoch-windowed p99 [`barrier_signal`](RegionMicrosim::barrier_signal)
    /// publishes on [`RegionSignal::p99_ms`], reset after each publish.
    epoch_sojourn: Histogram,
    /// Cumulative region-level sojourns — the fold of every barrier's
    /// epoch window (plus the post-horizon flush), bit-identical to
    /// recording each completion directly and what
    /// [`FleetReport::region_tail`](crate::report::FleetReport::region_tail)
    /// ultimately exposes.
    region_sojourn: Histogram,
    /// The last *measured* epoch p99, held across idle epochs so a tier
    /// that completed nothing (a fully shed or fully retreated epoch)
    /// keeps publishing its last observation instead of dropping to "no
    /// signal" — which would stampede every retreated device back at
    /// once and oscillate (see
    /// [`barrier_signal`](RegionMicrosim::barrier_signal)).
    held_p99_ms: Option<f64>,
}

impl RegionMicrosim {
    /// An idle per-request tier instantiated from the region template.
    ///
    /// # Panics
    ///
    /// Panics if `serving` fails [`CloudServing::validate`].
    pub fn new(serving: &CloudServing) -> Self {
        if let Err(why) = serving.validate() {
            panic!("invalid serving tier: {why}");
        }
        let backends = serving
            .backends
            .iter()
            .map(|b| MicroBackend {
                queue_high: VecDeque::new(),
                queue_low: VecDeque::new(),
                slot_heap: (0..b.slots as u32).map(|id| Reverse((0, id))).collect(),
                next_slot_id: b.slots as u32,
                scaler: ScalerState::default(),
                busy_us_at_barrier: 0,
                served_requests: 0,
                batches: 0,
                busy_us: 0,
                batch_sizes: Histogram::new(1.0, BATCH_HIST_BINS),
                sojourn_ms: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
                epoch_sojourn: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
                slot_timeline: Vec::new(),
                scale_events: 0,
                rate_per_slot_ms: b.full_batch_rate_per_slot_ms(),
                linger_us: (b.batching.linger_ms * 1000.0).round() as u64,
                linger_event_us: u64::MAX,
            })
            .collect();
        RegionMicrosim {
            serving: serving.clone(),
            backends,
            heap: BinaryHeap::new(),
            shed_fraction: 0.0,
            epoch_sojourn: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
            region_sojourn: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
            held_p99_ms: None,
        }
    }

    /// The cumulative region-level per-request sojourn distribution, as
    /// of the last barrier (or flush). The engine folds this into the
    /// report's `cloud_sojourn` slot at the end of a run.
    pub fn region_sojourn(&self) -> &Histogram {
        &self.region_sojourn
    }

    /// Consumes the region-level sojourn histogram (end of run).
    pub fn take_region_sojourn(&mut self) -> Histogram {
        std::mem::replace(
            &mut self.region_sojourn,
            Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
        )
    }

    /// The serving-tier template this region runs.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Runs one epoch: interleaves the merged, sorted arrival stream with
    /// the pending service events, pushing every completion (including
    /// completions of requests admitted in earlier epochs) into `out`.
    /// Timer events at or beyond `epoch_end_us` stay queued for the next
    /// epoch.
    ///
    /// `requests` must be sorted by `(arrival_us, device_id)` with every
    /// arrival inside the epoch (debug-asserted).
    pub fn run_epoch(
        &mut self,
        requests: &[OffloadRequest],
        epoch_end_us: u64,
        out: &mut Vec<CompletedRequest>,
    ) {
        self.run_epoch_probed(requests, epoch_end_us, out, 0, &mut PhaseProbe::disabled());
    }

    /// [`run_epoch`](RegionMicrosim::run_epoch) with telemetry: timer
    /// pops, heap pushes, and discrete batch closes are counted into
    /// `probe`, and every batch close is emitted as a
    /// [`TraceEvent::BatchClose`] at its exact close instant.
    pub fn run_epoch_probed(
        &mut self,
        requests: &[OffloadRequest],
        epoch_end_us: u64,
        out: &mut Vec<CompletedRequest>,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        // Stage-1 keys are unique fleet-wide; chained stages (> 1) may
        // tie when two in-flight requests from one device finish in the
        // same batch and chain to identical next-stage arrivals — those
        // serve FIFO in slice order, which the barrier keeps
        // shard-invariant with a stable sort.
        debug_assert!(requests.windows(2).all(|w| {
            let a = (w[0].arrival_us, w[0].device_id, w[0].stage);
            let b = (w[1].arrival_us, w[1].device_id, w[1].stage);
            a < b || (a == b && w[0].stage > 1)
        }));
        debug_assert!(requests.iter().all(|r| r.arrival_us < epoch_end_us));
        let mut touched = vec![false; self.backends.len()];
        let mut i = 0;
        while i < requests.len() {
            let now = requests[i].arrival_us;
            // Timer events strictly before the arrival instant run first.
            // Events at exactly `now` stay queued: a slot freed at `now`
            // is already visible through the slot heap, and `dispatch`
            // re-checks the linger deadline directly — so same-instant
            // arrivals enqueue *before* any batch at `now` closes and can
            // board it (the documented ordering).
            self.run_timers(now, false, out, region, probe);
            touched.iter_mut().for_each(|t| *t = false);
            while i < requests.len() && requests[i].arrival_us == now {
                let request = requests[i];
                let backend = self.least_work_backend(now);
                let queue = if request.high_priority {
                    &mut self.backends[backend].queue_high
                } else {
                    &mut self.backends[backend].queue_low
                };
                queue.push_back(request);
                touched[backend] = true;
                i += 1;
            }
            for (backend, hit) in touched.iter().enumerate() {
                if *hit {
                    self.dispatch(backend, now, out, region, probe);
                }
            }
        }
        self.run_timers(epoch_end_us, false, out, region, probe);
    }

    /// Drains everything still queued or in flight — the cloud keeps
    /// serving past the horizon so every admitted request completes and
    /// the tail histograms account for the whole population.
    pub fn flush(&mut self, out: &mut Vec<CompletedRequest>) {
        self.flush_probed(out, 0, &mut PhaseProbe::disabled());
    }

    /// [`flush`](RegionMicrosim::flush) with telemetry (the post-horizon
    /// drain still closes batches worth recording).
    pub fn flush_probed(
        &mut self,
        out: &mut Vec<CompletedRequest>,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        self.run_timers(u64::MAX, true, out, region, probe);
        // Fold the post-horizon completions into the cumulative
        // histograms — the final barrier never runs after a flush.
        let RegionMicrosim {
            backends,
            region_sojourn,
            ..
        } = &mut *self;
        for backend in backends.iter_mut() {
            backend.sojourn_ms.merge(&backend.epoch_sojourn);
            region_sojourn.merge(&backend.epoch_sojourn);
            backend.epoch_sojourn.reset();
        }
        debug_assert!(self.backends.iter().all(|b| b.queued() == 0));
        debug_assert!(self.backends.iter().all(|b| b.linger_event_us == u64::MAX));
    }

    /// Re-arms one slot-free wakeup per executor slot. A flush pops
    /// every pending event while executors may stay occupied into the
    /// future; a post-flush **wave** of chained stage arrivals (staged
    /// pipelines, [`crate::PipelineSpec`]) that queues behind such a
    /// slot would otherwise never be re-dispatched — no event, no
    /// wakeup. Spurious wakeups are harmless (`dispatch` on an empty or
    /// blocked queue is a no-op), so this re-arms unconditionally.
    pub(crate) fn rearm_slot_events(&mut self, probe: &mut PhaseProbe) {
        for (i, backend) in self.backends.iter().enumerate() {
            for &Reverse((free_us, _slot)) in backend.slot_heap.iter() {
                self.heap
                    .push(Reverse((free_us, EVENT_SLOT_FREE, i as u32)));
                probe.on_push();
            }
        }
    }

    /// Processes pending timer events with `time < limit_us` (or
    /// `<= limit_us` when `inclusive`).
    fn run_timers(
        &mut self,
        limit_us: u64,
        inclusive: bool,
        out: &mut Vec<CompletedRequest>,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        while let Some(&Reverse((time, kind, backend))) = self.heap.peek() {
            if time > limit_us || (time == limit_us && !inclusive) {
                break;
            }
            self.heap.pop();
            probe.on_pop();
            if kind == EVENT_LINGER {
                // The backend's one pending linger wakeup just fired;
                // `dispatch` re-arms if the batcher is still filling.
                debug_assert_eq!(self.backends[backend as usize].linger_event_us, time);
                self.backends[backend as usize].linger_event_us = u64::MAX;
            }
            self.dispatch(backend as usize, time, out, region, probe);
        }
    }

    /// The backend a new arrival joins: least work left, estimated as the
    /// earliest slot gap plus the queue drained at the backend's peak
    /// (full-batch) rate over its **live** slots — the discrete analogue
    /// of the fluid water-fill. Under [`DispatchPolicy::CostAware`] the
    /// work-left score is weighed by the backend's price × energy
    /// [`BackendConfig::cost_weight`], the discrete analogue of the
    /// cost-weighted water-fill. Ties go to the lowest index.
    fn least_work_backend(&self, now_us: u64) -> usize {
        let cost_aware = self.serving.dispatch == DispatchPolicy::CostAware;
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, (config, backend)) in self.serving.backends.iter().zip(&self.backends).enumerate() {
            let free_at = backend.earliest_free_us();
            let slot_wait_ms = free_at.saturating_sub(now_us) as f64 / 1000.0;
            let rate = backend.live_slots() as f64 * backend.rate_per_slot_ms;
            let score = if cost_aware {
                // Include the arriving job's own service so an idle tier
                // (all work-left 0) still ranks by cost, then weigh by
                // price × energy.
                (slot_wait_ms + (backend.queued() + 1) as f64 / rate) * config.cost_weight()
            } else {
                slot_wait_ms + backend.queued() as f64 / rate
            };
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Closes every batch `backend` can start at `now`: while a slot is
    /// free and the batcher is ready (`max_batch` waiting, or the oldest
    /// request has lingered out), assemble high-priority-first, occupy the
    /// slot for the affine batch cost, and complete every member. If the
    /// batcher is still filling, schedule the linger expiry instead.
    fn dispatch(
        &mut self,
        backend: usize,
        now_us: u64,
        out: &mut Vec<CompletedRequest>,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        let config = &self.serving.backends[backend];
        let linger_us = self.backends[backend].linger_us;
        loop {
            let state = &mut self.backends[backend];
            let queued = state.queued();
            if queued == 0 {
                return;
            }
            let free_at = state.earliest_free_us();
            if free_at > now_us {
                // No executor free: the pending slot-free event re-runs
                // this dispatch when one opens up.
                return;
            }
            let oldest = state.oldest_arrival_us().expect("queue is non-empty");
            let linger_deadline = oldest.saturating_add(linger_us);
            if queued < config.batching.max_batch && now_us < linger_deadline {
                // Still filling: wake up when the oldest request's linger
                // window closes — unless a wakeup is already in flight.
                // The pending one can only be *earlier* (the deadline is
                // monotone), and an early wakeup re-checks and re-arms,
                // so one event per backend covers every filling batch.
                if state.linger_event_us == u64::MAX {
                    state.linger_event_us = linger_deadline;
                    self.heap
                        .push(Reverse((linger_deadline, EVENT_LINGER, backend as u32)));
                    probe.on_push();
                }
                return;
            }
            let size = queued.min(config.batching.max_batch);
            let service_us = (config.batch_service_ms(size as f64) * 1000.0)
                .round()
                .max(1.0) as u64;
            let completion_us = now_us + service_us;
            state.occupy_earliest(completion_us);
            state.batches += 1;
            state.busy_us += service_us;
            state.batch_sizes.record(size as f64);
            for _ in 0..size {
                let request = match state.queue_high.pop_front() {
                    Some(r) => r,
                    None => state.queue_low.pop_front().expect("batch within queue"),
                };
                let sojourn_ms = (completion_us - request.arrival_us) as f64 / 1000.0;
                // One record per completion on the hot path; the barrier
                // folds this epoch window into the cumulative and
                // region-level histograms with exact merges instead
                // ([`barrier_signal`](RegionMicrosim::barrier_signal)).
                state.epoch_sojourn.record(sojourn_ms);
                state.served_requests += 1;
                out.push(CompletedRequest {
                    request,
                    backend: backend as u32,
                    sojourn_ms,
                    completion_us,
                });
            }
            self.heap
                .push(Reverse((completion_us, EVENT_SLOT_FREE, backend as u32)));
            if probe.is_enabled() {
                probe.on_push();
                probe.on_batches(1);
                probe.emit(TraceEvent::BatchClose {
                    time_us: now_us,
                    region,
                    backend: backend as u64,
                    batches: 1,
                    size_milli: size as u64 * 1000,
                });
            }
        }
    }

    /// Total requests waiting across all backends.
    pub fn depth(&self) -> f64 {
        self.backends.iter().map(|b| b.queued() as f64).sum()
    }

    /// Live slot counts, backend order (metrics sampling).
    pub fn live_slots(&self) -> Vec<u64> {
        self.backends
            .iter()
            .map(|b| b.live_slots() as u64)
            .collect()
    }

    /// The wait (ms) a new arrival of the given class would see at
    /// `now_us`: the least-loaded backend's slot gap plus its queue
    /// drained at the peak batch rate.
    pub fn wait_ms(&self, high_priority: bool, now_us: u64) -> f64 {
        self.backends
            .iter()
            .map(|backend| {
                let slot_wait = backend.earliest_free_us().saturating_sub(now_us) as f64 / 1000.0;
                let ahead = if high_priority {
                    backend.queue_high.len()
                } else {
                    backend.queued()
                } as f64;
                let rate = backend.live_slots() as f64 * backend.rate_per_slot_ms;
                slot_wait + ahead / rate
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Runs the autoscalers at the epoch barrier (`now_us` = the epoch
    /// end) — **before** [`barrier_signal`](RegionMicrosim::barrier_signal)
    /// so the published signal reflects post-scale capacity. Scale-up adds
    /// slots free at `now_us` and arms a slot-free event so queued work
    /// can board them next epoch; scale-down retires **idle** slots only
    /// (an in-flight batch is never killed) and retries at later barriers
    /// if not enough executors are idle.
    pub fn scale(&mut self, now_us: u64, epoch_us: u64) {
        self.scale_probed(now_us, epoch_us, 0, &mut PhaseProbe::disabled());
    }

    /// [`scale`](RegionMicrosim::scale) with telemetry: every *realized*
    /// slot-count change is emitted as a [`TraceEvent::ScalingStep`]
    /// (scale-down reports the achieved count when too few executors
    /// were idle to retire the full step).
    pub fn scale_probed(
        &mut self,
        now_us: u64,
        epoch_us: u64,
        region: u64,
        probe: &mut PhaseProbe,
    ) {
        let heap = &mut self.heap;
        for (i, (config, backend)) in self
            .serving
            .backends
            .iter()
            .zip(self.backends.iter_mut())
            .enumerate()
        {
            backend.slot_timeline.push(backend.live_slots() as u32);
            if let Some(auto) = &config.autoscaler {
                let slots = backend.live_slots();
                let observed = match auto.signal {
                    ScalingSignal::Utilization => {
                        let epoch_busy = backend.busy_us - backend.busy_us_at_barrier;
                        if epoch_us > 0 {
                            epoch_busy as f64 / (slots as f64 * epoch_us as f64)
                        } else {
                            0.0
                        }
                    }
                    ScalingSignal::QueueDepth => backend.queued() as f64 / slots as f64,
                    // The epoch-windowed p99 sojourn over the tail target:
                    // above 1 the epoch blew its budget. An idle epoch (no
                    // completions) observes 0, which damps the estimate
                    // down and lets the pool scale back in.
                    ScalingSignal::TailLatency { target_us } => {
                        if backend.epoch_sojourn.count() > 0 {
                            backend.epoch_sojourn.percentile(99.0) / (target_us as f64 / 1000.0)
                        } else {
                            0.0
                        }
                    }
                };
                let target = auto.step(&mut backend.scaler, observed, slots);
                match target.cmp(&slots) {
                    std::cmp::Ordering::Greater => {
                        backend.add_slots(target - slots, now_us);
                        heap.push(Reverse((now_us, EVENT_SLOT_FREE, i as u32)));
                        probe.on_push();
                        auto.arm(&mut backend.scaler);
                        backend.scale_events += 1;
                        if probe.is_enabled() {
                            probe.emit(TraceEvent::ScalingStep {
                                time_us: now_us,
                                region,
                                backend: i as u64,
                                from_slots: slots as u64,
                                to_slots: target as u64,
                            });
                        }
                    }
                    std::cmp::Ordering::Less => {
                        let retired = backend.retire_idle(slots - target, now_us);
                        if retired > 0 {
                            auto.arm(&mut backend.scaler);
                            backend.scale_events += 1;
                            if probe.is_enabled() {
                                probe.emit(TraceEvent::ScalingStep {
                                    time_us: now_us,
                                    region,
                                    backend: i as u64,
                                    from_slots: slots as u64,
                                    to_slots: backend.live_slots() as u64,
                                });
                            }
                        }
                    }
                    std::cmp::Ordering::Equal => {}
                }
            }
            backend.busy_us_at_barrier = backend.busy_us;
        }
    }

    /// The barrier signal shards read next epoch; updates the damped shed
    /// fraction from the tier state observed at `now_us` (the epoch end,
    /// **after** [`scale`](RegionMicrosim::scale) has run).
    pub fn barrier_signal(&mut self, now_us: u64) -> RegionSignal {
        // Incremental histogram merge: the dispatch hot loop records each
        // completion exactly once (into its backend's epoch window); the
        // barrier folds those windows into the cumulative per-backend
        // histogram and the region-level epoch window in one exact,
        // hot-bin-bounded merge pass — bit-identical to per-completion
        // records, at a fraction of the hot-path cost. The epoch windows
        // consumed here are reset here, closing the window this signal
        // publishes ([`scale`](RegionMicrosim::scale) reads the same
        // window just before, at the documented scale-then-signal
        // barrier cadence).
        let RegionMicrosim {
            backends,
            epoch_sojourn,
            region_sojourn,
            ..
        } = &mut *self;
        for backend in backends.iter_mut() {
            backend.sojourn_ms.merge(&backend.epoch_sojourn);
            epoch_sojourn.merge(&backend.epoch_sojourn);
            backend.epoch_sojourn.reset();
        }
        region_sojourn.merge(epoch_sojourn);
        let wait_low = self.wait_ms(false, now_us);
        let target = self.serving.admission.shed_fraction(self.depth(), wait_low);
        self.shed_fraction = damp_shed_fraction(self.shed_fraction, target);
        // The epoch-windowed tail: p99 of the sojourns completed since
        // the last barrier. An idle epoch (nothing completed) re-publishes
        // the last *measured* p99 instead of clearing the signal: a
        // region that shed or retreated 100% of a flash crowd completes
        // nothing, and publishing `None` then would release every
        // retreated device at once, re-saturate the tier, and oscillate.
        // Holding keeps retreat armed until a fresh measurement — the
        // deterministic 1-in-16 retreat re-probes keep those coming —
        // actually clears the budget. A tier that has never completed
        // anything still publishes `None` (no signal, not a stale zero).
        let p99_ms = if self.epoch_sojourn.count() > 0 {
            let fresh = self.epoch_sojourn.percentile(99.0);
            self.held_p99_ms = Some(fresh);
            Some(fresh)
        } else {
            self.held_p99_ms
        };
        self.epoch_sojourn.reset();
        RegionSignal {
            wait_high_ms: self.wait_ms(true, now_us),
            wait_low_ms: wait_low,
            // The weight of the backend the next arrival would join —
            // the discrete analogue of the fluid tier's marginal cost.
            marginal_cost: self.serving.backends[self.least_work_backend(now_us)].cost_weight(),
            shed_fraction: self.shed_fraction,
            p99_ms,
        }
    }

    /// Per-backend cumulative stats, in backend order. Per-slot busy time
    /// is normalized by the run's mean provisioned slot count (= the
    /// configured count when static).
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.serving
            .backends
            .iter()
            .zip(&self.backends)
            .map(|(b, q)| {
                let mean_slots = if q.slot_timeline.is_empty() {
                    b.slots as f64
                } else {
                    q.slot_timeline.iter().map(|&s| s as f64).sum::<f64>()
                        / q.slot_timeline.len() as f64
                };
                BackendStats {
                    name: b.name.clone(),
                    slots: b.slots,
                    served_jobs: q.served_requests as f64,
                    batches: q.batches as f64,
                    busy_ms: q.busy_us as f64 / 1000.0 / mean_slots,
                    batch_sizes: q.batch_sizes.clone(),
                    sojourn_ms: q.sojourn_ms.clone(),
                    slot_timeline: q.slot_timeline.clone(),
                    scale_events: q.scale_events,
                    cost_fp: provision_cost_fp(&q.slot_timeline, b.price_per_slot_epoch),
                    cloud_energy_mj: q.served_requests as f64 * b.energy_per_job_mj,
                }
            })
            .collect()
    }
}

impl fmt::Display for RegionMicrosim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "per-request tier: {} backend(s), {:.0} requests queued",
            self.backends.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capacity() -> CloudCapacity {
        CloudCapacity::new(10, 10.0) // 1 job/ms drain rate
    }

    fn single_queue() -> RegionServing {
        RegionServing::new(&CloudServing::from(capacity()))
    }

    #[test]
    fn empty_tier_has_no_wait() {
        let q = single_queue();
        assert_eq!(q.wait_ms(false), 0.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn overload_accumulates_backlog_and_wait() {
        let mut q = single_queue();
        // 1 job/ms drain; admit 2000 jobs per 1000 ms epoch -> +1000 backlog.
        q.admit(0, 2000);
        q.drain(1000.0);
        assert!((q.depth() - 1000.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 1000.0).abs() < 1e-9);
        // Underload drains it back down.
        q.admit(0, 0);
        q.drain(1000.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn adequate_capacity_keeps_queue_empty() {
        let mut q = single_queue();
        for _ in 0..10 {
            q.admit(0, 500); // half the epoch's drain budget
            q.drain(1000.0);
            assert_eq!(q.depth(), 0.0);
        }
    }

    #[test]
    fn priority_class_waits_only_behind_high_backlog() {
        let mut q = single_queue();
        q.admit(300, 3000);
        // Before draining: high sees 300 jobs ahead, low sees all 3300.
        assert!((q.wait_ms(true) - 300.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 3300.0).abs() < 1e-9);
        // Draining serves the high class first.
        q.drain(300.0);
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.wait_ms(false) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn drain_is_work_conserving_across_classes() {
        let mut q = single_queue();
        q.admit(100, 100);
        q.drain(150.0); // budget 150: 100 high + 50 low
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.depth() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        CloudCapacity::new(0, 5.0);
    }

    #[test]
    #[should_panic(expected = "high_fraction")]
    fn bad_priority_fraction_rejected() {
        CloudCapacity::new(1, 5.0).with_priority(1.5);
    }

    #[test]
    fn capacity_converts_to_equivalent_backend() {
        let serving = CloudServing::from(capacity().with_priority(0.25));
        assert_eq!(serving.backends.len(), 1);
        let b = &serving.backends[0];
        assert_eq!(b.slots, 10);
        assert_eq!(b.batching.max_batch, 1);
        // Peak rate equals the old drain rate bit-for-bit.
        assert_eq!(b.full_batch_rate_per_ms(), capacity().drain_rate_per_ms());
        assert_eq!(
            serving.discipline,
            QueueDiscipline::Priority {
                high_fraction: 0.25
            }
        );
    }

    #[test]
    fn batching_amortizes_base_cost() {
        // base 32 ms + 1 ms/item, batch 32: per-item cost 2 ms vs 33 ms.
        let unbatched = BackendConfig::new("gpu", 1, 32.0, 1.0);
        let batched = unbatched.clone().with_batching(32, 100.0);
        assert!((unbatched.full_batch_rate_per_ms() - 1.0 / 33.0).abs() < 1e-12);
        assert!((batched.full_batch_rate_per_ms() - 32.0 / 64.0).abs() < 1e-12);

        // Under the same overload the batched tier drains ~16.5x faster:
        // two 10 s epochs clear all 10 000 jobs, while the unbatched
        // backend has served only ~600.
        let mut plain = RegionServing::new(&CloudServing::new(vec![unbatched]));
        let mut tier = RegionServing::new(&CloudServing::new(vec![batched]));
        plain.admit(0, 10_000);
        tier.admit(0, 10_000);
        for _ in 0..2 {
            plain.drain(10_000.0);
            tier.drain(10_000.0);
        }
        assert_eq!(tier.depth(), 0.0, "batched tier should have cleared");
        assert!(
            plain.depth() > 9_000.0,
            "unbatched backlog should persist, got {}",
            plain.depth()
        );
    }

    #[test]
    fn sparse_traffic_batches_by_linger_fill() {
        // 0.2 jobs/ms arriving, linger 40 ms => fluid batches of ~8, and
        // at batch 8 the backend keeps up (rate 8/18 ≈ 0.44 jobs/ms).
        let config = BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(64, 40.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![config]));
        tier.admit(0, 200);
        tier.drain(1000.0);
        assert_eq!(tier.depth(), 0.0, "batch 8 keeps up with 0.2 jobs/ms");
        let stats = tier.backend_stats().remove(0);
        assert_eq!(stats.served_jobs, 200.0);
        let mean_batch = stats.served_jobs / stats.batches;
        let hist = stats.batch_sizes;
        assert!(
            (7.0..=9.0).contains(&mean_batch),
            "linger fill should set batch ≈ 8, got {mean_batch}"
        );
        assert!(hist.count() > 0);
        // Sparse batches linger: the published wait includes the linger tax.
        assert!(tier.wait_ms(false) > 0.0);
    }

    #[test]
    fn water_fill_prefers_least_loaded_backend() {
        let fast = BackendConfig::new("fast", 4, 10.0, 0.0);
        let slow = BackendConfig::new("slow", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![fast, slow]));
        // Equal completion times at start: arrivals split 4:1 by capacity.
        tier.admit(0, 1000);
        let depths: Vec<f64> = tier
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        assert!((depths[0] - 800.0).abs() < 1e-6, "fast got {}", depths[0]);
        assert!((depths[1] - 200.0).abs() < 1e-6, "slow got {}", depths[1]);
        // Completion times equalize.
        assert!((depths[0] / 0.4 - depths[1] / 0.1).abs() < 1e-6);
    }

    #[test]
    fn water_fill_tops_up_emptier_backend_first() {
        let a = BackendConfig::new("a", 1, 10.0, 0.0);
        let b = BackendConfig::new("b", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![a, b]));
        tier.admit(0, 100);
        tier.drain(0.0); // no drain budget; just close the epoch
                         // Backend queues now hold 50/50. Push one backend ahead by hand.
        tier.queues[0].backlog_low += 30.0;
        // The next 30 jobs must all go to the emptier backend.
        tier.admit(0, 30);
        let d0 = tier.queues[0].backlog_high + tier.queues[0].backlog_low;
        let d1 = tier.queues[1].backlog_high + tier.queues[1].backlog_low;
        assert!((d0 - d1).abs() < 1e-9, "got {d0} vs {d1}");
    }

    #[test]
    fn admission_shed_fraction_tracks_overload() {
        let open = AdmissionPolicy::Open;
        assert_eq!(open.shed_fraction(1e9, 1e9), 0.0);
        let depth = AdmissionPolicy::QueueDepth { max_jobs: 100.0 };
        assert_eq!(depth.shed_fraction(50.0, 0.0), 0.0);
        assert!((depth.shed_fraction(200.0, 0.0) - 0.5).abs() < 1e-12);
        let deadline = AdmissionPolicy::Deadline {
            max_wait_ms: 1000.0,
        };
        assert_eq!(deadline.shed_fraction(0.0, 500.0), 0.0);
        assert!((deadline.shed_fraction(0.0, 4000.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn signal_reports_waits_and_shedding() {
        let config = BackendConfig::new("gpu", 10, 10.0, 0.0);
        let serving = CloudServing::new(vec![config])
            .with_admission(AdmissionPolicy::Deadline { max_wait_ms: 100.0 });
        let mut tier = RegionServing::new(&serving);
        tier.admit(50, 2000);
        tier.drain(1000.0);
        // The admission controller acts at publish time (after scaling),
        // not inside drain — the barrier order is drain → scale → publish.
        assert_eq!(tier.signal().shed_fraction, 0.0);
        tier.scale(1000.0);
        let signal = tier.publish();
        assert!(signal.wait_low_ms > 100.0);
        assert!(signal.shed_fraction > 0.0 && signal.shed_fraction < 1.0);
        assert!(signal.wait_high_ms <= signal.wait_low_ms);
        assert_eq!(signal.wait_ms(true), signal.wait_high_ms);
        assert_eq!(signal.wait_ms(false), signal.wait_low_ms);
        // An unpriced tier publishes the neutral marginal cost.
        assert_eq!(signal.marginal_cost, 1.0);
    }

    #[test]
    fn validate_rejects_bad_tiers() {
        assert!(CloudServing::new(vec![]).validate().is_err());
        let dup = CloudServing::new(vec![
            BackendConfig::new("x", 1, 1.0, 0.0),
            BackendConfig::new("x", 1, 1.0, 0.0),
        ]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let bad_admission = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_admission(AdmissionPolicy::QueueDepth { max_jobs: 0.0 });
        assert!(bad_admission.validate().is_err());
        let bad_failover = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: -1.0 });
        assert!(bad_failover.validate().is_err());
    }

    #[test]
    fn display_shows_state() {
        let mut q = single_queue();
        q.admit(5, 10);
        assert!(format!("{q}").contains("15.0 jobs"));
    }

    // ---- per-request microsimulation ----

    fn request(arrival_us: u64, device_id: u64) -> OffloadRequest {
        OffloadRequest {
            arrival_us,
            device_id,
            stage: 1,
            high_priority: false,
            origin_region: 0,
            failed_over: false,
            base_latency_ms: 0.0,
            energy_mj: 0.0,
            switched: false,
        }
    }

    fn run_all(sim: &mut RegionMicrosim, requests: &[OffloadRequest]) -> Vec<CompletedRequest> {
        let mut out = Vec::new();
        let end = requests.last().map_or(1, |r| r.arrival_us + 1);
        sim.run_epoch(requests, end, &mut out);
        sim.flush(&mut out);
        out
    }

    #[test]
    fn microsim_zero_linger_serves_single_request_batches() {
        // Unbatched 10 ms backend: each request is its own batch and an
        // idle tier serves it immediately — sojourn is exactly the
        // single-item service time.
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 10.0, 0.0)]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..4).map(|i| request(i * 100_000, i)).collect();
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 4);
        for c in &done {
            assert!((c.sojourn_ms - 10.0).abs() < 1e-9, "got {}", c.sojourn_ms);
        }
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 4.0);
        assert_eq!(stats.batch_sizes.min(), 1.0);
        assert_eq!(stats.batch_sizes.max(), 1.0);
        assert_eq!(stats.sojourn_ms.count(), 4);
        assert!((stats.busy_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn microsim_same_instant_arrivals_share_a_batch() {
        // Four arrivals at the same microsecond with max_batch 4 close as
        // one full batch even with zero linger.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(4, 0.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..4).map(|i| request(5_000, i)).collect();
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 4);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0, "one full batch expected");
        // Batch of 4: service 10 + 4·1 = 14 ms for every member.
        for c in &done {
            assert!((c.sojourn_ms - 14.0).abs() < 1e-9, "got {}", c.sojourn_ms);
        }
    }

    #[test]
    fn microsim_linger_expiry_closes_partial_batches() {
        // Two arrivals 5 ms apart, max_batch 32, linger 50 ms: the batch
        // closes 50 ms after the first arrival with both requests aboard.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(32, 50.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests = vec![request(0, 0), request(5_000, 1)];
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 2);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0);
        // Service of batch 2 = 12 ms, started at linger expiry (50 ms).
        let first = done.iter().find(|c| c.request.device_id == 0).unwrap();
        let second = done.iter().find(|c| c.request.device_id == 1).unwrap();
        assert!(
            (first.sojourn_ms - 62.0).abs() < 1e-9,
            "{}",
            first.sojourn_ms
        );
        assert!(
            (second.sojourn_ms - 57.0).abs() < 1e-9,
            "{}",
            second.sojourn_ms
        );
    }

    #[test]
    fn microsim_arrival_at_linger_deadline_boards_the_closing_batch() {
        // The documented intra-epoch ordering: at equal timestamps,
        // same-microsecond arrivals enqueue before any batch closes. An
        // arrival landing exactly when the oldest request's linger
        // expires must therefore share its batch.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(32, 50.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests = vec![request(0, 0), request(50_000, 1)];
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 2);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0, "both requests share one batch");
        // Batch of 2 closes at 50 ms, service 10 + 2·1 = 12 ms.
        let first = done.iter().find(|c| c.request.device_id == 0).unwrap();
        let second = done.iter().find(|c| c.request.device_id == 1).unwrap();
        assert!(
            (first.sojourn_ms - 62.0).abs() < 1e-9,
            "{}",
            first.sojourn_ms
        );
        assert!(
            (second.sojourn_ms - 12.0).abs() < 1e-9,
            "{}",
            second.sojourn_ms
        );
    }

    #[test]
    fn microsim_single_slot_fifo_completions_are_monotone() {
        // One slot + FIFO ⇒ batches run strictly in order, so completion
        // times are non-decreasing in arrival order.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 25.0, 2.0).with_batching(8, 30.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..64u64)
            .map(|i| request(i.wrapping_mul(0x9E37_79B9) % 200_000, i))
            .collect();
        let mut sorted = requests.clone();
        sorted.sort_unstable_by_key(|r| (r.arrival_us, r.device_id));
        let done = run_all(&mut sim, &sorted);
        assert_eq!(done.len(), 64);
        let mut completion_by_arrival: Vec<(u64, u64, f64)> = done
            .iter()
            .map(|c| {
                let completion = c.request.arrival_us + (c.sojourn_ms * 1000.0).round() as u64;
                (c.request.arrival_us, c.request.device_id, completion as f64)
            })
            .collect();
        completion_by_arrival.sort_unstable_by_key(|&(a, d, _)| (a, d));
        for w in completion_by_arrival.windows(2) {
            assert!(
                w[0].2 <= w[1].2,
                "FIFO single-slot completions must be monotone: {w:?}"
            );
        }
    }

    #[test]
    fn microsim_priority_class_fills_batches_first() {
        // Saturate a single slot, then queue one high + many low: the
        // high-priority request must board the next batch.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 100.0, 0.0).with_batching(2, 0.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let mut requests: Vec<_> = (0..6).map(|i| request(i * 10, i)).collect();
        requests[5].high_priority = true;
        let mut high = requests[5];
        high.arrival_us = 55;
        requests[5] = high;
        requests.sort_unstable_by_key(|r| (r.arrival_us, r.device_id));
        let done = run_all(&mut sim, &requests);
        let high_done = done.iter().find(|c| c.request.high_priority).unwrap();
        // First batch (2 requests) starts immediately; the high-priority
        // arrival boards the second batch ahead of three earlier lows.
        let high_completion = high_done.request.arrival_us as f64 / 1000.0 + high_done.sojourn_ms;
        let worst_low = done
            .iter()
            .filter(|c| !c.request.high_priority)
            .map(|c| c.request.arrival_us as f64 / 1000.0 + c.sojourn_ms)
            .fold(0.0f64, f64::max);
        assert!(
            high_completion < worst_low,
            "high priority must finish before the last low: {high_completion} vs {worst_low}"
        );
    }

    #[test]
    fn microsim_flush_drains_everything_and_signal_sheds() {
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 100.0, 0.0)])
            .with_admission(AdmissionPolicy::QueueDepth { max_jobs: 4.0 });
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..50).map(|i| request(i, i)).collect();
        let mut out = Vec::new();
        sim.run_epoch(&requests, 1_000, &mut out);
        assert!(sim.depth() > 4.0, "backlog should persist at the barrier");
        let signal = sim.barrier_signal(1_000);
        assert!(signal.shed_fraction > 0.0);
        assert!(signal.wait_low_ms > 0.0);
        assert!(signal.wait_high_ms <= signal.wait_low_ms);
        sim.flush(&mut out);
        assert_eq!(out.len(), 50, "flush must complete every request");
        assert_eq!(sim.depth(), 0.0);
        assert!(format!("{sim}").contains("0 requests queued"));
    }

    #[test]
    fn microsim_spreads_arrivals_across_backends() {
        // Two identical backends: consecutive arrivals with queued work
        // alternate by least-work-left instead of piling on backend 0.
        let serving = CloudServing::new(vec![
            BackendConfig::new("a", 1, 50.0, 0.0),
            BackendConfig::new("b", 1, 50.0, 0.0),
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..8).map(|i| request(i, i)).collect();
        let done = run_all(&mut sim, &requests);
        let on_a = done.iter().filter(|c| c.backend == 0).count();
        let on_b = done.iter().filter(|c| c.backend == 1).count();
        assert_eq!(
            on_a, 4,
            "least-work dispatch should balance, got {on_a}/{on_b}"
        );
        assert_eq!(on_b, 4);
    }

    #[test]
    fn fidelity_default_is_fluid() {
        assert_eq!(CloudSimFidelity::default(), CloudSimFidelity::Fluid);
        assert_ne!(CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest);
    }

    // ---- autoscaling ----

    /// One unbatched 1 ms/job backend with a queue-depth autoscaler
    /// reacting undamped (α = 1) and no cooldown unless configured.
    fn autoscaled_backend(auto: Autoscaler) -> CloudServing {
        CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 1.0, 0.0).with_autoscaler(auto)
        ])
    }

    fn depth_scaler(max_slots: usize) -> Autoscaler {
        Autoscaler::new(ScalingSignal::QueueDepth, 10.0, 1.0, 1, max_slots)
            .with_alpha(1.0)
            .with_cooldown(0)
    }

    #[test]
    fn autoscaler_validation_rejects_bad_configs() {
        let ok = depth_scaler(4);
        assert!(ok.validate().is_ok());
        let cases = [
            (
                Autoscaler {
                    scale_up: f64::NAN,
                    ..ok
                },
                "finite",
            ),
            (
                Autoscaler {
                    scale_down: 20.0,
                    ..ok
                },
                "below scale_up",
            ),
            (Autoscaler { min_slots: 0, ..ok }, "min_slots"),
            (
                Autoscaler {
                    min_slots: 8,
                    max_slots: 4,
                    ..ok
                },
                "max_slots",
            ),
            (Autoscaler { step: 0, ..ok }, "step"),
            (Autoscaler { alpha: 0.0, ..ok }, "alpha"),
            (
                Autoscaler {
                    signal: ScalingSignal::TailLatency { target_us: 0 },
                    ..ok
                },
                "target_us",
            ),
        ];
        for (auto, needle) in cases {
            let why = auto.validate().unwrap_err();
            assert!(why.contains(needle), "{why:?} should mention {needle}");
        }
        // Tier-level: initial slots must sit inside the bounds, and
        // price/energy must be sane.
        let outside = CloudServing::new(vec![
            BackendConfig::new("gpu", 9, 1.0, 0.0).with_autoscaler(depth_scaler(4))
        ]);
        assert!(outside.validate().unwrap_err().contains("outside"));
        let bad_price =
            CloudServing::new(vec![BackendConfig::new("gpu", 1, 1.0, 0.0).with_price(-1.0)]);
        assert!(bad_price.validate().unwrap_err().contains("price"));
        let bad_energy = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 1.0, 0.0).with_energy(f64::NAN)
        ]);
        assert!(bad_energy.validate().unwrap_err().contains("energy"));
    }

    #[test]
    fn autoscaler_scales_up_under_load_and_down_when_idle() {
        let mut tier = RegionServing::new(&autoscaled_backend(depth_scaler(4)));
        // Flood: 1 slot drains 1000/epoch, 5000 arrive — queue-depth per
        // slot blows past the threshold every barrier until max.
        for _ in 0..4 {
            tier.admit(0, 5000);
            tier.drain(1000.0);
            tier.scale(1000.0);
            tier.publish();
        }
        let stats = &tier.backend_stats()[0];
        assert_eq!(stats.slot_timeline, vec![1, 2, 3, 4]);
        assert_eq!(stats.scale_events, 3);
        // Idle: the backlog drains, then the pool walks back to min.
        for _ in 0..20 {
            tier.admit(0, 0);
            tier.drain(1000.0);
            tier.scale(1000.0);
            tier.publish();
        }
        let stats = &tier.backend_stats()[0];
        assert_eq!(*stats.slot_timeline.last().unwrap(), 1, "{stats:?}");
    }

    #[test]
    fn autoscaler_clamps_to_min_max_bounds() {
        let mut tier = RegionServing::new(&autoscaled_backend(depth_scaler(3).with_step(10)));
        // A giant step still lands exactly on max_slots…
        tier.admit(0, 100_000);
        tier.drain(1000.0);
        tier.scale(1000.0);
        assert_eq!(tier.backend_stats()[0].slot_timeline, vec![1]);
        tier.admit(0, 0);
        tier.drain(1000.0);
        tier.scale(1000.0);
        let stats = &tier.backend_stats()[0];
        assert_eq!(stats.slot_timeline, vec![1, 3], "step clamps to max");
        // …and a giant scale-down lands exactly on min_slots.
        let mut serving = autoscaled_backend(
            Autoscaler::new(ScalingSignal::QueueDepth, 10.0, 1.0, 2, 50)
                .with_alpha(1.0)
                .with_cooldown(0)
                .with_step(40),
        );
        serving.backends[0].slots = 50;
        let mut idle = RegionServing::new(&serving);
        idle.admit(0, 0);
        idle.drain(1000.0);
        idle.scale(1000.0);
        idle.admit(0, 0);
        idle.drain(1000.0);
        idle.scale(1000.0);
        let stats = &idle.backend_stats()[0];
        assert_eq!(stats.slot_timeline, vec![50, 10]);
        idle.admit(0, 0);
        idle.drain(1000.0);
        idle.scale(1000.0);
        assert_eq!(*idle.backend_stats()[0].slot_timeline.last().unwrap(), 2);
    }

    #[test]
    fn autoscaler_cooldown_suppresses_flapping() {
        // Alternating flood/idle epochs make an undamped, cooldown-free
        // scaler flap; a 3-epoch cooldown must strictly reduce the number
        // of applied scaling events on the same load pattern.
        let run = |cooldown: u32| {
            let auto = Autoscaler::new(ScalingSignal::QueueDepth, 2.0, 0.5, 1, 8)
                .with_alpha(1.0)
                .with_cooldown(cooldown);
            let mut tier = RegionServing::new(&autoscaled_backend(auto));
            for epoch in 0..16 {
                tier.admit(0, if epoch % 2 == 0 { 5000 } else { 0 });
                tier.drain(1000.0);
                tier.scale(1000.0);
                tier.publish();
            }
            tier.backend_stats()[0].scale_events
        };
        let flappy = run(0);
        let damped = run(3);
        assert!(
            damped < flappy,
            "cooldown must suppress flapping: {damped} !< {flappy}"
        );
        assert!(flappy >= 8, "undamped scaler should react every barrier");
    }

    /// The latent-gap pin: fluid epochs have no per-request sojourns, so
    /// the published tail must be explicitly absent — never a stale zero
    /// a device policy could mistake for "the cloud is instant".
    #[test]
    fn fluid_publishes_no_tail_signal() {
        let mut tier = RegionServing::new(&autoscaled_backend(depth_scaler(2)));
        tier.admit(0, 500);
        tier.drain(1000.0);
        tier.scale(1000.0);
        let signal = tier.publish();
        assert_eq!(signal.p99_ms, None, "fluid mode must publish no tail");
    }

    /// The microsim publishes the epoch-windowed region p99 with
    /// hysteresis: present after an epoch with completions, *held* across
    /// idle epochs (so a region that shed its entire crowd keeps warning
    /// retreated devices instead of inviting them all back at once), and
    /// absent only while no epoch has ever completed anything.
    #[test]
    fn microsim_barrier_holds_last_measured_p99_across_idle_epochs() {
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 10.0, 0.0)]);
        let mut sim = RegionMicrosim::new(&serving);
        let mut out = Vec::new();
        // Never-measured: an idle first epoch publishes no tail at all.
        sim.run_epoch(&[], 1_000_000, &mut out);
        let signal = sim.barrier_signal(1_000_000);
        assert_eq!(
            signal.p99_ms, None,
            "a tier that never completed anything has no tail to report"
        );
        let requests: Vec<_> = (0..4)
            .map(|i| request(1_000_000 + i * 100_000, i))
            .collect();
        sim.run_epoch(&requests, 2_000_000, &mut out);
        let signal = sim.barrier_signal(2_000_000);
        let p99 = signal
            .p99_ms
            .expect("an epoch with completions publishes its tail");
        assert!(
            (p99 - 10.0).abs() < SOJOURN_BIN_MS,
            "unqueued 10 ms service, got {p99}"
        );
        // Idle epoch: nothing completed since the last barrier, but the
        // last *measured* tail is held so retreat stays armed.
        sim.run_epoch(&[], 3_000_000, &mut out);
        let signal = sim.barrier_signal(3_000_000);
        assert_eq!(
            signal.p99_ms,
            Some(p99),
            "an idle epoch republishes the held tail, not None"
        );
    }

    /// A tail-targeting scaler in the per-request tier: a 10 ms backend
    /// against a 1 ms p99 target blows the budget every barrier, so the
    /// pool steps to max; once traffic stops, the zero observation walks
    /// it back down.
    #[test]
    fn microsim_tail_latency_scaler_steps_on_blown_p99() {
        let auto = Autoscaler::new(
            ScalingSignal::TailLatency { target_us: 1_000 },
            2.0,
            0.5,
            1,
            3,
        )
        .with_alpha(1.0)
        .with_cooldown(0);
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 0.0).with_autoscaler(auto)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let mut out = Vec::new();
        for epoch in 0..3u64 {
            let start = epoch * 1_000_000;
            let end = start + 1_000_000;
            let requests: Vec<_> = (0..8).map(|i| request(start + i * 1_000, i)).collect();
            sim.run_epoch(&requests, end, &mut out);
            sim.scale(end, 1_000_000);
            sim.barrier_signal(end);
        }
        let stats = &sim.backend_stats()[0];
        assert_eq!(
            stats.slot_timeline,
            vec![1, 2, 3],
            "blown tail steps up every barrier"
        );
        // Idle epochs observe 0 (no tail to miss) and scale back down.
        for epoch in 3..6u64 {
            let end = (epoch + 1) * 1_000_000;
            sim.run_epoch(&[], end, &mut out);
            sim.scale(end, 1_000_000);
            sim.barrier_signal(end);
        }
        assert_eq!(*sim.backend_stats()[0].slot_timeline.last().unwrap(), 1);
    }

    /// The same tail-targeting config in the fluid tier degrades to the
    /// queue-depth observation (fluid epochs have no per-request times),
    /// reproducing the depth scaler's trajectory exactly.
    #[test]
    fn fluid_tail_latency_scaler_degrades_to_queue_depth() {
        let auto = Autoscaler::new(
            ScalingSignal::TailLatency { target_us: 1_000 },
            10.0,
            1.0,
            1,
            4,
        )
        .with_alpha(1.0)
        .with_cooldown(0);
        let mut tier = RegionServing::new(&autoscaled_backend(auto));
        for _ in 0..4 {
            tier.admit(0, 5000);
            tier.drain(1000.0);
            tier.scale(1000.0);
            tier.publish();
        }
        let stats = &tier.backend_stats()[0];
        assert_eq!(stats.slot_timeline, vec![1, 2, 3, 4]);
        assert_eq!(stats.scale_events, 3);
    }

    #[test]
    fn fluid_scale_down_with_backlog_conserves_jobs() {
        // Queue-depth signal with an over-generous scale-down threshold:
        // the pool shrinks while jobs still wait. Nothing may be lost —
        // the backlog just drains slower (and the published wait says so).
        let auto = Autoscaler::new(ScalingSignal::QueueDepth, 1e9, 500.0, 1, 4)
            .with_alpha(1.0)
            .with_cooldown(0);
        let mut serving = autoscaled_backend(auto);
        serving.backends[0].slots = 4;
        let mut tier = RegionServing::new(&serving);
        tier.admit(0, 4400);
        tier.drain(100.0); // serves 400 (4 slots × 1 job/ms × 100 ms)
        let depth_before = tier.depth();
        assert!((depth_before - 4000.0).abs() < 1e-9);
        let wait_before_scale = tier.wait_ms(false);
        tier.scale(100.0); // 4000/4 = 1000 jobs/slot < 500? no: 1000 > 500
        assert_eq!(
            tier.backend_stats()[0].slot_timeline,
            vec![4],
            "no scale-down above the threshold"
        );
        // Drain the queue below the threshold, then the pool shrinks with
        // work still queued.
        tier.admit(0, 0);
        tier.drain(800.0); // serves 3200, 800 left -> 200/slot < 500
        let remaining = tier.depth();
        assert!((remaining - 800.0).abs() < 1e-9);
        tier.scale(800.0);
        let signal = tier.publish();
        let stats = &tier.backend_stats()[0];
        assert_eq!(*stats.slot_timeline.last().unwrap(), 4);
        assert_eq!(stats.scale_events, 1);
        assert!(
            (tier.depth() - remaining).abs() < 1e-12,
            "scale-down must not lose queued jobs"
        );
        // Published wait prices the post-scale (3-slot) capacity:
        // 800 jobs / 3 jobs-per-ms.
        assert!(
            (signal.wait_low_ms - remaining / 3.0).abs() < 1e-6,
            "wait {} should price 3 slots",
            signal.wait_low_ms
        );
        let _ = wait_before_scale;
    }

    /// The barrier-ordering regression pin (fluid): scaling events run
    /// *before* signal publication, so the published wait prices the
    /// post-scale slot count — not the end-of-epoch queue state at the
    /// old capacity.
    #[test]
    fn fluid_publish_prices_post_scale_capacity() {
        let mut tier = RegionServing::new(&autoscaled_backend(depth_scaler(2)));
        tier.admit(0, 2000);
        tier.drain(1000.0); // 1 slot serves 1000; 1000 remain
        assert!((tier.wait_ms(false) - 1000.0).abs() < 1e-9);
        tier.scale(1000.0); // 1000 jobs/slot > 10 → slots double to 2
        let signal = tier.publish();
        assert!(
            (signal.wait_low_ms - 500.0).abs() < 1e-9,
            "published wait must reflect the post-scale capacity, got {}",
            signal.wait_low_ms
        );
    }

    /// The same pin for the per-request tier: slots added at the barrier
    /// are visible in the published wait (and serve queued work next
    /// epoch), and scale-down never retires a busy executor.
    #[test]
    fn microsim_publish_prices_post_scale_capacity() {
        let auto = Autoscaler::new(ScalingSignal::QueueDepth, 4.0, 0.5, 1, 2)
            .with_alpha(1.0)
            .with_cooldown(0);
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 100.0, 0.0).with_autoscaler(auto)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..10).map(|i| request(i, i)).collect();
        let mut out = Vec::new();
        sim.run_epoch(&requests, 1_000, &mut out);
        let wait_pre_scale = sim.wait_ms(false, 1_000);
        sim.scale(1_000, 1_000);
        let signal = sim.barrier_signal(1_000);
        assert!(
            signal.wait_low_ms < wait_pre_scale,
            "post-scale wait {} must undercut pre-scale {}",
            signal.wait_low_ms,
            wait_pre_scale
        );
        let stats = &sim.backend_stats()[0];
        assert_eq!(stats.slot_timeline, vec![1]);
        assert_eq!(stats.scale_events, 1);
        // The added slot serves queued work from the next epoch on, and
        // every admitted request still completes.
        sim.run_epoch(&[], 200_000, &mut out);
        sim.scale(200_000, 199_000);
        sim.flush(&mut out);
        assert_eq!(out.len(), 10, "flush must complete every request");
        assert_eq!(sim.backend_stats()[0].slot_timeline, vec![1, 2]);
    }

    #[test]
    fn microsim_scale_down_never_retires_a_busy_executor() {
        let auto = Autoscaler::new(ScalingSignal::QueueDepth, 1e9, 0.5, 1, 2)
            .with_alpha(1.0)
            .with_cooldown(0);
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 2, 10_000.0, 0.0).with_autoscaler(auto)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let mut out = Vec::new();
        // Two requests occupy both 10 s executors well past the barrier.
        sim.run_epoch(&[request(0, 0), request(0, 1)], 1_000, &mut out);
        sim.scale(1_000, 1_000);
        let stats = &sim.backend_stats()[0];
        assert_eq!(
            stats.scale_events, 0,
            "both executors are mid-batch: the scale-down must defer"
        );
        assert_eq!(stats.slot_timeline, vec![2]);
        // Once a batch finishes, the deferred scale-down applies.
        sim.run_epoch(&[], 20_000_000, &mut out);
        sim.scale(20_000_000, 19_999_000);
        let stats = &sim.backend_stats()[0];
        assert_eq!(stats.scale_events, 1);
        assert_eq!(*stats.slot_timeline.last().unwrap(), 2);
        sim.run_epoch(&[], 20_001_000, &mut out);
        sim.scale(20_001_000, 1_000);
        assert_eq!(*sim.backend_stats()[0].slot_timeline.last().unwrap(), 1);
        sim.flush(&mut out);
        assert_eq!(out.len(), 2);
    }

    // ---- cost-aware dispatch ----

    #[test]
    fn cost_weight_is_neutral_when_unpriced() {
        let plain = BackendConfig::new("gpu", 1, 1.0, 0.0);
        assert_eq!(plain.cost_weight(), 1.0);
        assert_eq!(plain.clone().with_price(3.0).cost_weight(), 3.0);
        assert_eq!(plain.clone().with_energy(0.5).cost_weight(), 0.5);
        assert_eq!(plain.with_price(3.0).with_energy(0.5).cost_weight(), 1.5);
    }

    #[test]
    fn cost_aware_water_fill_prefers_cheap_backends() {
        let cheap = BackendConfig::new("cheap", 1, 10.0, 0.0)
            .with_price(1.0)
            .with_energy(1.0);
        let pricey = BackendConfig::new("pricey", 1, 10.0, 0.0)
            .with_price(9.0)
            .with_energy(1.0);
        // Least-work-left splits identical backends evenly…
        let mut lwl = RegionServing::new(&CloudServing::new(vec![cheap.clone(), pricey.clone()]));
        lwl.admit(0, 100);
        let d: Vec<f64> = lwl
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        assert!((d[0] - 50.0).abs() < 1e-9 && (d[1] - 50.0).abs() < 1e-9);
        // …while cost-aware water-filling sends 9× the flow to the pool
        // that costs 9× less.
        let mut aware = RegionServing::new(
            &CloudServing::new(vec![cheap, pricey]).with_dispatch(DispatchPolicy::CostAware),
        );
        aware.admit(0, 100);
        let d: Vec<f64> = aware
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        assert!((d[0] - 90.0).abs() < 1e-6, "cheap got {}", d[0]);
        assert!((d[1] - 10.0).abs() < 1e-6, "pricey got {}", d[1]);
        // The published marginal cost is the cheapest backend's weight.
        assert_eq!(aware.signal().marginal_cost, 1.0);
    }

    #[test]
    fn marginal_cost_tracks_congestion_not_just_config() {
        // The published marginal cost is the weight of the backend the
        // *next* arrival would join — identically configured regions must
        // publish different values once their queues diverge, otherwise
        // cheapest-viable failover could never distinguish siblings.
        let cheap = BackendConfig::new("cheap", 1, 10.0, 0.0)
            .with_price(1.0)
            .with_energy(1.0);
        let pricey = BackendConfig::new("pricey", 1, 10.0, 0.0)
            .with_price(9.0)
            .with_energy(1.0);
        let serving = CloudServing::new(vec![cheap.clone(), pricey.clone()])
            .with_dispatch(DispatchPolicy::CostAware);

        // Fluid: idle region prices marginal work on the cheap pool…
        let mut idle = RegionServing::new(&serving);
        assert_eq!(idle.signal().marginal_cost, 1.0);
        // …a region whose cheap pool carries a deep backlog prices it on
        // the pricey pool.
        idle.queues[0].backlog_low = 10_000.0;
        assert_eq!(idle.signal().marginal_cost, 9.0);

        // Per-request: saturate the cheap slot with queued work and the
        // barrier signal flips to the pricey pool's weight too.
        let micro_serving = CloudServing::new(vec![
            BackendConfig::new("cheap", 1, 100_000.0, 0.0)
                .with_price(1.0)
                .with_energy(1.0),
            BackendConfig::new("pricey", 1, 100_000.0, 0.0)
                .with_price(9.0)
                .with_energy(1.0),
        ])
        .with_dispatch(DispatchPolicy::CostAware);
        let mut sim = RegionMicrosim::new(&micro_serving);
        assert_eq!(sim.barrier_signal(0).marginal_cost, 1.0, "idle → cheap");
        // Swamp the cheap pool: slot busy 100 s out, ten requests queued.
        // The cost-weighted work-left of the cheap pool now exceeds the
        // pricey pool's 9× job cost, so the next arrival — and with it
        // the published marginal cost — lands on the pricey pool.
        sim.backends[0].occupy_earliest(100_000_000);
        for i in 0..10 {
            sim.backends[0].queue_low.push_back(request(0, i));
        }
        assert_eq!(
            sim.barrier_signal(1_000).marginal_cost,
            9.0,
            "a swamped cheap pool must price marginal work on the pricey pool"
        );
    }

    #[test]
    fn cost_aware_rejects_partially_priced_tiers() {
        // One backend priced, the sibling unpriced: the neutral-1
        // fallback would rank a real price against a placeholder, so the
        // tier must not validate under cost-aware dispatch…
        let mixed = CloudServing::new(vec![
            BackendConfig::new("a", 1, 1.0, 0.0).with_price(0.5),
            BackendConfig::new("b", 1, 1.0, 0.0),
        ])
        .with_dispatch(DispatchPolicy::CostAware);
        assert!(mixed.validate().unwrap_err().contains("every backend"));
        let mixed_energy = CloudServing::new(vec![
            BackendConfig::new("a", 1, 1.0, 0.0).with_energy(2.0),
            BackendConfig::new("b", 1, 1.0, 0.0),
        ])
        .with_dispatch(DispatchPolicy::CostAware);
        assert!(mixed_energy.validate().is_err());
        // …while all-set (price everywhere, energy nowhere), all-unset,
        // and least-work tiers stay valid.
        let price_only = CloudServing::new(vec![
            BackendConfig::new("a", 1, 1.0, 0.0).with_price(0.5),
            BackendConfig::new("b", 1, 1.0, 0.0).with_price(2.0),
        ])
        .with_dispatch(DispatchPolicy::CostAware);
        assert!(price_only.validate().is_ok());
        let unpriced = CloudServing::new(vec![
            BackendConfig::new("a", 1, 1.0, 0.0),
            BackendConfig::new("b", 1, 1.0, 0.0),
        ])
        .with_dispatch(DispatchPolicy::CostAware);
        assert!(unpriced.validate().is_ok());
        let least_work = CloudServing::new(vec![
            BackendConfig::new("a", 1, 1.0, 0.0).with_price(0.5),
            BackendConfig::new("b", 1, 1.0, 0.0),
        ]);
        assert!(least_work.validate().is_ok());
    }

    #[test]
    fn microsim_cost_aware_dispatch_prefers_cheap_backend() {
        // `pricey` sits at index 0: under least-work-left an idle tier
        // ties toward it, while cost-aware dispatch routes to `cheap`
        // until queueing makes the pricey pool worth its money.
        let pricey = BackendConfig::new("pricey", 1, 50.0, 0.0)
            .with_price(8.0)
            .with_energy(1.0);
        let cheap = BackendConfig::new("cheap", 1, 50.0, 0.0)
            .with_price(1.0)
            .with_energy(1.0);
        let serving =
            CloudServing::new(vec![pricey, cheap]).with_dispatch(DispatchPolicy::CostAware);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..4).map(|i| request(i * 100_000, i)).collect();
        let done = run_all(&mut sim, &requests);
        assert!(
            done.iter().all(|c| c.backend == 1),
            "an uncontended cost-aware tier must serve from the cheap pool"
        );
        // Under congestion the pricey pool still takes overflow: 8 same-
        // instant arrivals cannot all wait 8× on one slot.
        let mut sim = RegionMicrosim::new(&serving);
        let burst: Vec<_> = (0..8).map(|i| request(0, i)).collect();
        let done = run_all(&mut sim, &burst);
        assert!(
            done.iter().any(|c| c.backend == 0),
            "congestion must spill onto the pricey pool"
        );
    }
}
