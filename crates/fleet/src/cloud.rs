//! The shared cloud tier: a per-region *serving tier* of heterogeneous
//! batched backends behind an admission controller.
//!
//! The paper idealizes the cloud as infinitely fast (`L_cloud = 0`); at
//! fleet scale that assumption breaks first. PR 2 modeled each region as a
//! single fluid FIFO/priority queue; this module grows that into a serving
//! tier:
//!
//! * [`BackendConfig`] — one pool of identical executors (e.g. a GPU pool
//!   vs. a CPU pool) with an affine batch cost
//!   `T(b) = base_service_ms + per_item_ms · b`, so the per-item cost
//!   `T(b)/b` falls as batches grow — exactly the amortization LCP
//!   (Hadidi et al. 2020) exploits for communication.
//! * [`BatchPolicy`] — a dynamic batcher per backend: batches close at
//!   `max_batch` items or when `linger_ms` expires, whichever comes first.
//! * [`AdmissionPolicy`] — queue-depth or deadline-based shedding. The
//!   controller publishes a *shed fraction* at each epoch barrier; devices
//!   apply it (deterministically, from their own seeded streams) to the
//!   offloads of the **next** epoch, preserving the one-epoch contention
//!   lag that keeps epochs embarrassingly parallel.
//! * [`FailoverPolicy`] — what a shed request does: fail over to the
//!   least-loaded sibling region (paying an inter-region penalty), or fall
//!   back to on-device execution, charged at the device's local-only
//!   deployment option.
//!
//! All queue state advances deterministically at epoch barriers in fluid
//! form: arrivals are admitted as job counts, dispatched across backends by
//! least-work-left water-filling, and each backend drains at the rate its
//! current batch size implies. [`CloudCapacity`] — the PR 2 configuration
//! surface — is kept as the degenerate single-backend, unbatched case and
//! converts losslessly via [`CloudServing::from`].

use crate::report::Histogram;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Which cloud model a fleet run uses ([`crate::FleetScenario`]'s
/// `fidelity` knob).
///
/// The fluid mode resolves whole epochs of offloads as job *quantities* at
/// the barrier — cheap and mean-accurate, but every request of an epoch
/// sees the same published wait, so the latency distribution has no cloud
/// tail. The per-request mode replays each offloaded request as its own
/// discrete event (arrival → queueing → batch admission → service →
/// completion) inside [`RegionMicrosim`], which is what p95/p99 reporting
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloudSimFidelity {
    /// Epoch-barrier fluid queues (the PR 3 model, and the default):
    /// arrivals are admitted as counts and drained at batch-amortized
    /// rates.
    #[default]
    Fluid,
    /// Discrete per-request microsimulation: every offloaded request gets
    /// its own arrival/batch/service/completion times, and the report
    /// carries exact per-request sojourn histograms with tail summaries.
    PerRequest,
}

/// Queueing discipline for a region's cloud slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Single class: every offloaded inference waits behind the full
    /// backlog.
    Fifo,
    /// Two classes: the given fraction of devices (chosen per-device,
    /// seeded) is high-priority and waits only behind other high-priority
    /// work; everyone else waits behind everything.
    Priority {
        /// Fraction of devices in the high-priority class, in `[0, 1]`.
        high_fraction: f64,
    },
}

/// Capacity description for the PR 2 single-queue cloud, applied per
/// region. Retained as the simple configuration surface: it converts into
/// a one-backend, unbatched [`CloudServing`] with identical drain
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudCapacity {
    /// Concurrent inference slots per region.
    pub slots_per_region: usize,
    /// Cloud-side service time per offloaded inference (ms).
    pub service_ms: f64,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
}

impl CloudCapacity {
    /// FIFO capacity with the given slots and per-inference service time.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_region` is zero or `service_ms` is not
    /// positive/finite.
    pub fn new(slots_per_region: usize, service_ms: f64) -> Self {
        assert!(slots_per_region > 0, "cloud needs at least one slot");
        assert!(
            service_ms.is_finite() && service_ms > 0.0,
            "service_ms must be positive and finite"
        );
        CloudCapacity {
            slots_per_region,
            service_ms,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Jobs one region can complete per millisecond.
    pub fn drain_rate_per_ms(&self) -> f64 {
        self.slots_per_region as f64 / self.service_ms
    }
}

/// When a backend's dynamic batcher closes a batch: at `max_batch` items,
/// or when the oldest queued item has lingered `linger_ms`, whichever
/// comes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single executor runs (≥ 1).
    pub max_batch: usize,
    /// Longest a request may wait for its batch to fill (ms, ≥ 0).
    pub linger_ms: f64,
}

impl BatchPolicy {
    /// No batching: every request is its own batch.
    pub fn none() -> Self {
        BatchPolicy {
            max_batch: 1,
            linger_ms: 0.0,
        }
    }

    /// A batcher closing at `max_batch` items or after `linger_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `linger_ms` is negative or
    /// non-finite.
    pub fn new(max_batch: usize, linger_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            linger_ms.is_finite() && linger_ms >= 0.0,
            "linger_ms must be non-negative and finite"
        );
        BatchPolicy {
            max_batch,
            linger_ms,
        }
    }
}

/// One pool of identical executors inside a region's serving tier, with an
/// affine batch cost: a batch of `b` items occupies one executor for
/// `base_service_ms + per_item_ms · b` milliseconds, so the per-item cost
/// is sub-linear in `b` and large batches amortize the fixed part.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendConfig {
    /// Display name (`"gpu"`, `"cpu"`, …), unique within the region.
    pub name: String,
    /// Concurrent batch executors in this pool.
    pub slots: usize,
    /// Fixed cost per batch (ms) — the part batching amortizes.
    pub base_service_ms: f64,
    /// Marginal cost per batched item (ms).
    pub per_item_ms: f64,
    /// The dynamic batcher in front of this pool.
    pub batching: BatchPolicy,
}

impl BackendConfig {
    /// An unbatched backend: `slots` executors at
    /// `base_service_ms + per_item_ms` per single-item request.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero, either cost is negative or non-finite,
    /// or the single-item service time `base_service_ms + per_item_ms` is
    /// not positive.
    pub fn new(name: &str, slots: usize, base_service_ms: f64, per_item_ms: f64) -> Self {
        assert!(slots > 0, "backend needs at least one slot");
        assert!(
            base_service_ms.is_finite() && base_service_ms >= 0.0,
            "base_service_ms must be non-negative and finite"
        );
        assert!(
            per_item_ms.is_finite() && per_item_ms >= 0.0,
            "per_item_ms must be non-negative and finite"
        );
        assert!(
            base_service_ms + per_item_ms > 0.0,
            "single-item service time must be positive"
        );
        BackendConfig {
            name: name.to_string(),
            slots,
            base_service_ms,
            per_item_ms,
            batching: BatchPolicy::none(),
        }
    }

    /// Puts a dynamic batcher in front of the pool.
    pub fn with_batching(mut self, max_batch: usize, linger_ms: f64) -> Self {
        self.batching = BatchPolicy::new(max_batch, linger_ms);
        self
    }

    /// Service time of one batch of (fluid) size `b` on one executor (ms).
    pub fn batch_service_ms(&self, b: f64) -> f64 {
        self.base_service_ms + self.per_item_ms * b
    }

    /// Jobs per millisecond this pool completes when every batch closes
    /// full — the backend's peak throughput, used as its dispatch weight.
    pub fn full_batch_rate_per_ms(&self) -> f64 {
        let b = self.batching.max_batch as f64;
        self.slots as f64 * b / self.batch_service_ms(b)
    }
}

/// Load shedding at a region's front door. The controller looks at the
/// queue state at each epoch barrier and publishes the fraction of the
/// *next* epoch's offloads to shed, sized so that admitted work drains at
/// the configured bound in steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit everything (the PR 2 behavior).
    Open,
    /// Shed when the region's total backlog exceeds `max_jobs`.
    QueueDepth {
        /// Backlog bound (jobs) above which arrivals are shed.
        max_jobs: f64,
    },
    /// Shed when the low-priority-class wait exceeds `max_wait_ms`.
    Deadline {
        /// Wait bound (ms) above which arrivals are shed.
        max_wait_ms: f64,
    },
}

impl AdmissionPolicy {
    /// The fraction of next-epoch offloads to shed, given the post-drain
    /// queue state: `0` while within bounds, approaching `1` as the
    /// overload grows (`1 − bound/observed`, the fluid fraction that
    /// brings admitted load back to the bound in steady state).
    pub fn shed_fraction(&self, depth_jobs: f64, wait_low_ms: f64) -> f64 {
        let overload = |observed: f64, bound: f64| {
            if observed <= bound || observed <= 0.0 {
                0.0
            } else {
                (1.0 - bound / observed).clamp(0.0, 1.0)
            }
        };
        match *self {
            AdmissionPolicy::Open => 0.0,
            AdmissionPolicy::QueueDepth { max_jobs } => overload(depth_jobs, max_jobs),
            AdmissionPolicy::Deadline { max_wait_ms } => overload(wait_low_ms, max_wait_ms),
        }
    }
}

/// EWMA-damps a published shed fraction toward the controller's raw
/// target: the raw `1 − bound/observed` over-corrects under the one-epoch
/// lag (bang-bang oscillation), so both fidelities halve toward it each
/// barrier and snap the geometric tail to zero so open tiers publish
/// exact 0. Shared so the fluid and per-request controllers cannot drift.
fn damp_shed_fraction(previous: f64, target: f64) -> f64 {
    let damped = 0.5 * (previous + target);
    if damped < 1e-6 {
        0.0
    } else {
        damped
    }
}

/// Where a shed request goes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailoverPolicy {
    /// Straight back to the device: the request runs the device's
    /// local-only deployment option (charged at that option's latency and
    /// energy — see `DeploymentPlanner::local_fallback`).
    ToDevice,
    /// Try the sibling region with the smallest published wait first,
    /// paying `penalty_ms` of inter-region latency; if that region is
    /// shedding too (per its own published fraction), fall back to the
    /// device.
    SiblingRegion {
        /// Extra round-trip latency charged to failed-over requests (ms).
        penalty_ms: f64,
    },
}

/// A region's full serving-tier description: heterogeneous backends, the
/// queue discipline, admission control, and failover. Every region in a
/// scenario hosts one instance of this template.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudServing {
    /// The backend pools (at least one).
    pub backends: Vec<BackendConfig>,
    /// Queue discipline, shared by all backends in the region.
    pub discipline: QueueDiscipline,
    /// Load shedding at the region's front door.
    pub admission: AdmissionPolicy,
    /// Where shed requests go.
    pub failover: FailoverPolicy,
}

impl CloudServing {
    /// A serving tier with the given backends, FIFO discipline, open
    /// admission, and to-device failover.
    pub fn new(backends: Vec<BackendConfig>) -> Self {
        CloudServing {
            backends,
            discipline: QueueDiscipline::Fifo,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the failover policy.
    pub fn with_failover(mut self, failover: FailoverPolicy) -> Self {
        self.failover = failover;
        self
    }

    /// Validates the cross-field constraints a scenario build enforces.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the tier has no backends,
    /// duplicate backend names, or a non-positive admission bound or
    /// failover penalty.
    pub fn validate(&self) -> Result<(), String> {
        if self.backends.is_empty() {
            return Err("serving tier needs at least one backend".to_string());
        }
        for (i, b) in self.backends.iter().enumerate() {
            if self.backends[..i].iter().any(|o| o.name == b.name) {
                return Err(format!(
                    "duplicate backend name {:?} in serving tier",
                    b.name
                ));
            }
        }
        match self.admission {
            AdmissionPolicy::QueueDepth { max_jobs }
                if !(max_jobs.is_finite() && max_jobs > 0.0) =>
            {
                return Err("admission max_jobs must be positive and finite".to_string());
            }
            AdmissionPolicy::Deadline { max_wait_ms }
                if !(max_wait_ms.is_finite() && max_wait_ms > 0.0) =>
            {
                return Err("admission max_wait_ms must be positive and finite".to_string());
            }
            _ => {}
        }
        if let FailoverPolicy::SiblingRegion { penalty_ms } = self.failover {
            if !(penalty_ms.is_finite() && penalty_ms >= 0.0) {
                return Err("failover penalty_ms must be non-negative and finite".to_string());
            }
        }
        Ok(())
    }
}

impl From<CloudCapacity> for CloudServing {
    /// The PR 2 single-queue cloud as a degenerate serving tier: one
    /// unbatched backend whose drain rate is exactly
    /// `slots_per_region / service_ms`.
    fn from(capacity: CloudCapacity) -> Self {
        CloudServing {
            backends: vec![BackendConfig::new(
                "default",
                capacity.slots_per_region,
                capacity.service_ms,
                0.0,
            )],
            discipline: capacity.discipline,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
        }
    }
}

/// The barrier-published state shards read for a whole epoch (one-epoch
/// contention lag): per-class waits and the admission controller's shed
/// fraction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionSignal {
    /// Wait (ms) a high-priority arrival experiences.
    pub wait_high_ms: f64,
    /// Wait (ms) a low-priority (FIFO-class) arrival experiences.
    pub wait_low_ms: f64,
    /// Fraction of next-epoch offloads the admission controller sheds.
    pub shed_fraction: f64,
}

impl RegionSignal {
    /// The wait for a device's priority class.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        if high_priority {
            self.wait_high_ms
        } else {
            self.wait_low_ms
        }
    }
}

/// Per-backend fluid queue state.
#[derive(Debug, Clone, PartialEq)]
struct BackendQueue {
    backlog_high: f64,
    backlog_low: f64,
    /// Jobs dispatched to this backend in the current epoch (for the
    /// linger fill-rate estimate).
    epoch_arrivals: f64,
    /// Drain rate (jobs/ms) realized in the last [`RegionServing::drain`],
    /// used to publish waits. Starts at the unbatched rate.
    rate_per_ms: f64,
    /// Expected extra wait from the batcher lingering for items (ms),
    /// realized in the last drain.
    linger_wait_ms: f64,
    // Cumulative serving stats.
    served_jobs: f64,
    batches: f64,
    busy_ms: f64,
    batch_sizes: Histogram,
}

/// How many bins backend batch-size histograms carry (width 1.0 — batch
/// sizes above this land in the overflow bucket).
const BATCH_HIST_BINS: usize = 1_024;

/// Per-request sojourn histogram resolution (ms per bin) — matches the
/// engine's end-to-end latency binning so tails line up across views.
pub(crate) const SOJOURN_BIN_MS: f64 = 10.0;
/// Bins in per-request sojourn histograms (overflow beyond 20 s).
pub(crate) const SOJOURN_BINS: usize = 2_000;

/// Cumulative serving stats for one backend, as accumulated across a
/// run's epoch barriers ([`RegionServing::backend_stats`]); the engine
/// stamps these with the region name and horizon-normalized utilization
/// to form the report's `BackendReport`s.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// Backend name from the serving tier.
    pub name: String,
    /// Executor slots in the pool.
    pub slots: usize,
    /// Jobs completed (fluid count).
    pub served_jobs: f64,
    /// Batches closed (fluid count).
    pub batches: f64,
    /// Per-slot busy time accumulated over the run (ms).
    pub busy_ms: f64,
    /// Distribution of closed batch sizes (width-1 bins).
    pub batch_sizes: Histogram,
    /// Per-request cloud sojourn times (arrival → completion, ms). Only
    /// the per-request microsimulation populates this; the fluid tier
    /// leaves it empty (fluid epochs have no per-request times).
    pub sojourn_ms: Histogram,
}

/// One region's deterministic serving-tier state: per-backend fluid queues
/// fed by least-work-left dispatch, drained at batch-amortized rates, with
/// cumulative per-backend stats for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionServing {
    serving: CloudServing,
    queues: Vec<BackendQueue>,
    /// EWMA-damped shed fraction: the raw `1 − bound/observed` target
    /// over-corrects under the one-epoch lag (a fully-shed epoch drains
    /// the queue, the wait crashes to zero, the next epoch floods —
    /// bang-bang oscillation); halving toward the target each barrier
    /// settles near the fluid fixed point instead.
    shed_fraction: f64,
}

impl RegionServing {
    /// An empty serving tier instantiated from the region template.
    ///
    /// # Panics
    ///
    /// Panics if `serving` fails [`CloudServing::validate`].
    pub fn new(serving: &CloudServing) -> Self {
        if let Err(why) = serving.validate() {
            panic!("invalid serving tier: {why}");
        }
        let queues = serving
            .backends
            .iter()
            .map(|b| BackendQueue {
                backlog_high: 0.0,
                backlog_low: 0.0,
                epoch_arrivals: 0.0,
                rate_per_ms: b.slots as f64 * 1.0 / b.batch_service_ms(1.0),
                linger_wait_ms: 0.0,
                served_jobs: 0.0,
                batches: 0.0,
                busy_ms: 0.0,
                batch_sizes: Histogram::new(1.0, BATCH_HIST_BINS),
            })
            .collect();
        RegionServing {
            serving: serving.clone(),
            queues,
            shed_fraction: 0.0,
        }
    }

    /// The serving-tier template this region runs.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Admits one epoch's offloaded inferences (split by priority class)
    /// and dispatches them across backends by least-work-left
    /// water-filling: arrivals fill backends so their expected completion
    /// times equalize, which is what an ideal least-loaded load balancer
    /// achieves in the fluid limit.
    pub fn admit(&mut self, high: u64, low: u64) {
        let total = (high + low) as f64;
        if total <= 0.0 {
            return;
        }
        let assignments = self.water_fill(total);
        let high_share = high as f64 / total;
        for (queue, a) in self.queues.iter_mut().zip(&assignments) {
            queue.backlog_high += a * high_share;
            queue.backlog_low += a * (1.0 - high_share);
            queue.epoch_arrivals += a;
        }
    }

    /// Splits `total` arriving jobs across backends so that the resulting
    /// completion times `(backlog_i + a_i) / capacity_i` equalize where
    /// possible (classic water-filling over per-backend peak rates).
    fn water_fill(&self, total: f64) -> Vec<f64> {
        let caps: Vec<f64> = self
            .serving
            .backends
            .iter()
            .map(|b| b.full_batch_rate_per_ms())
            .collect();
        if caps.len() == 1 {
            return vec![total];
        }
        let depths: Vec<f64> = self
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        // Sort backend indices by current completion time (depth/cap).
        let mut order: Vec<usize> = (0..caps.len()).collect();
        order.sort_by(|&a, &b| {
            (depths[a] / caps[a])
                .partial_cmp(&(depths[b] / caps[b]))
                .expect("finite completion times")
                .then(a.cmp(&b))
        });
        // Raise the water level: each step pulls the next backend's
        // completion time into the active set, until the arrivals are
        // absorbed. The last step's `next_level` is ∞, so the loop always
        // terminates with `remaining` fully absorbed.
        let mut remaining = total;
        let mut active_cap = 0.0;
        let mut level = depths[order[0]] / caps[order[0]];
        for (k, &i) in order.iter().enumerate() {
            active_cap += caps[i];
            let next_level = if k + 1 < order.len() {
                let j = order[k + 1];
                depths[j] / caps[j]
            } else {
                f64::INFINITY
            };
            let absorbable = (next_level - level) * active_cap;
            if absorbable >= remaining {
                level += remaining / active_cap;
                break;
            }
            remaining -= absorbable;
            level = next_level;
        }
        // Everyone at or below the water level gets topped up to it.
        let mut assignments: Vec<f64> = (0..caps.len())
            .map(|j| (caps[j] * level - depths[j]).max(0.0))
            .collect();
        // Conserve jobs exactly: hand the float residual (≈ 1 ulp of
        // rounding per step) to the least-loaded backend.
        let assigned: f64 = assignments.iter().sum();
        assignments[order[0]] += total - assigned;
        assignments
    }

    /// Drains every backend for `epoch_ms` of wall-clock. Each backend's
    /// batcher closes batches of the fluid size its backlog and arrival
    /// rate imply (`min(max_batch, max(1, depth/slots, rate·linger))`),
    /// serving high-priority work first, and records batch-close and
    /// utilization stats.
    pub fn drain(&mut self, epoch_ms: f64) {
        for (config, queue) in self.serving.backends.iter().zip(&mut self.queues) {
            let depth = queue.backlog_high + queue.backlog_low;
            let arrival_rate = queue.epoch_arrivals / epoch_ms;
            let max_batch = config.batching.max_batch as f64;
            let b = if config.batching.max_batch <= 1 {
                1.0
            } else {
                // Two fluid regimes: a backlog carried over from earlier
                // epochs closes batches straight off the queue, while in
                // the keeping-up regime batches grow to whatever the
                // arrival flow accumulates within the linger window.
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let backlog_fill = carried / config.slots as f64;
                let linger_fill = arrival_rate * config.batching.linger_ms;
                backlog_fill.max(linger_fill).clamp(1.0, max_batch)
            };
            let batch_ms = config.batch_service_ms(b);
            let rate = config.slots as f64 * b / batch_ms;
            let budget = rate * epoch_ms;
            let served_high = queue.backlog_high.min(budget);
            queue.backlog_high -= served_high;
            let served_low = queue.backlog_low.min(budget - served_high);
            queue.backlog_low -= served_low;
            let served = served_high + served_low;

            // The extra wait the batcher itself adds: batches fed from a
            // standing backlog close instantly, but batches filled from
            // the arrival flow make items wait on average half the fill
            // time (bounded by the linger window). Scale by the fraction
            // of the batch the flow must supply.
            queue.linger_wait_ms = if config.batching.max_batch <= 1 {
                0.0
            } else {
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let from_flow = (1.0 - carried / (b * config.slots as f64)).clamp(0.0, 1.0);
                let fill_ms = if arrival_rate > 0.0 {
                    (b / arrival_rate).min(config.batching.linger_ms)
                } else {
                    config.batching.linger_ms
                };
                from_flow * fill_ms / 2.0
            };

            let batches = if b > 0.0 { served / b } else { 0.0 };
            queue.rate_per_ms = rate;
            queue.served_jobs += served;
            queue.batches += batches;
            queue.busy_ms += batches * batch_ms / config.slots as f64;
            let closed = batches.round() as u64;
            if closed > 0 {
                queue.batch_sizes.record_n(b, closed);
            }
            queue.epoch_arrivals = 0.0;
        }
        let target = self
            .serving
            .admission
            .shed_fraction(self.depth(), self.wait_ms(false));
        self.shed_fraction = damp_shed_fraction(self.shed_fraction, target);
    }

    /// The wait (ms) a new arrival of the given class experiences: the
    /// least-loaded backend's backlog-ahead drain time, plus that
    /// backend's batcher linger.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        self.queues
            .iter()
            .map(|q| {
                let ahead = if high_priority {
                    q.backlog_high
                } else {
                    q.backlog_high + q.backlog_low
                };
                ahead / q.rate_per_ms + q.linger_wait_ms
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Total queued jobs across all backends.
    pub fn depth(&self) -> f64 {
        self.queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .sum()
    }

    /// The barrier signal shards read next epoch: per-class waits and the
    /// admission controller's damped shed fraction.
    pub fn signal(&self) -> RegionSignal {
        RegionSignal {
            wait_high_ms: self.wait_ms(true),
            wait_low_ms: self.wait_ms(false),
            shed_fraction: self.shed_fraction,
        }
    }

    /// Per-backend cumulative stats, in backend order.
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.serving
            .backends
            .iter()
            .zip(&self.queues)
            .map(|(b, q)| BackendStats {
                name: b.name.clone(),
                slots: b.slots,
                served_jobs: q.served_jobs,
                batches: q.batches,
                busy_ms: q.busy_ms,
                batch_sizes: q.batch_sizes.clone(),
                sojourn_ms: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
            })
            .collect()
    }
}

impl fmt::Display for RegionServing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serving tier: {} backend(s), {:.1} jobs queued, wait {:.1} ms",
            self.queues.len(),
            self.depth(),
            self.wait_ms(false)
        )
    }
}

/// One offloaded inference inside the per-request microsimulation — the
/// event a device contributes at its arrival time, plus the bookkeeping
/// the engine needs to finish the record once the request completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadRequest {
    /// Arrival time at the region's front door (µs since run start).
    pub arrival_us: u64,
    /// Global device id — with `arrival_us` this forms the unique,
    /// shard-count-invariant sort key the barrier merges requests by.
    pub device_id: u64,
    /// Whether the device is in the high-priority class.
    pub high_priority: bool,
    /// Origin region index (for the report's per-region breakdown; it
    /// differs from the serving region when the request failed over).
    pub origin_region: u32,
    /// Whether this request reached the serving region via failover.
    pub failed_over: bool,
    /// Device-side latency (ms): comm + compute, *without* any cloud
    /// queueing — the microsim supplies that part.
    pub base_latency_ms: f64,
    /// Edge energy of the inference (mJ).
    pub energy_mj: f64,
    /// Whether the device switched deployment options on this inference.
    pub switched: bool,
}

/// A finished request from [`RegionMicrosim`]: the original request plus
/// where and how long it was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// The request as admitted.
    pub request: OffloadRequest,
    /// Index of the backend that served it.
    pub backend: u32,
    /// Cloud sojourn (arrival → batch completion, ms).
    pub sojourn_ms: f64,
}

/// Timer-event kinds in the microsim heap. Slot-free events sort before
/// linger expiries at the same microsecond so a freed executor is visible
/// to the batcher that was waiting on it.
const EVENT_SLOT_FREE: u8 = 0;
const EVENT_LINGER: u8 = 1;

/// Per-backend discrete state inside [`RegionMicrosim`].
#[derive(Debug, Clone)]
struct MicroBackend {
    queue_high: VecDeque<OffloadRequest>,
    queue_low: VecDeque<OffloadRequest>,
    /// When each executor slot becomes free (µs).
    slot_free_us: Vec<u64>,
    // Cumulative serving stats.
    served_requests: u64,
    batches: u64,
    /// Total executor-occupied time across all slots (µs).
    busy_us: u64,
    batch_sizes: Histogram,
    sojourn_ms: Histogram,
}

impl MicroBackend {
    fn queued(&self) -> usize {
        self.queue_high.len() + self.queue_low.len()
    }

    /// Arrival time of the oldest waiting request (µs), if any.
    fn oldest_arrival_us(&self) -> Option<u64> {
        match (self.queue_high.front(), self.queue_low.front()) {
            (Some(h), Some(l)) => Some(h.arrival_us.min(l.arrival_us)),
            (Some(h), None) => Some(h.arrival_us),
            (None, Some(l)) => Some(l.arrival_us),
            (None, None) => None,
        }
    }

    /// The earliest-free slot (ties to the lowest index).
    fn earliest_slot(&self) -> (usize, u64) {
        let mut best = 0usize;
        for (i, &t) in self.slot_free_us.iter().enumerate() {
            if t < self.slot_free_us[best] {
                best = i;
            }
        }
        (best, self.slot_free_us[best])
    }
}

/// One region's **per-request** serving-tier state: every offloaded
/// request is a discrete event with its own arrival, queueing,
/// batch-admission, service-start, and completion times.
///
/// The microsim advances through an event heap keyed by integer
/// microseconds. At equal timestamps, slot-free events run before
/// arrivals and arrivals before linger expiries, and all same-microsecond
/// arrivals are enqueued before any batch closes — so simultaneous
/// arrivals can share a batch and the schedule is a pure function of the
/// merged, `(arrival_us, device_id)`-sorted request stream (the
/// shard-count-invariance the determinism contract needs).
///
/// Batch assembly per backend: a batch closes when a slot is free **and**
/// either `max_batch` requests wait or the oldest waiting request has
/// lingered `linger_ms` (zero linger ⇒ close immediately, so unbatched
/// backends serve single-request batches). High-priority requests fill
/// batches first under the priority discipline. A closed batch of `b`
/// requests occupies its executor for `base_service_ms + per_item_ms · b`,
/// and every member completes at the batch's completion time.
#[derive(Debug, Clone)]
pub struct RegionMicrosim {
    serving: CloudServing,
    backends: Vec<MicroBackend>,
    /// Pending timer events: (time µs, kind, backend index).
    heap: BinaryHeap<Reverse<(u64, u8, u32)>>,
    /// EWMA-damped shed fraction, same controller as the fluid tier.
    shed_fraction: f64,
}

impl RegionMicrosim {
    /// An idle per-request tier instantiated from the region template.
    ///
    /// # Panics
    ///
    /// Panics if `serving` fails [`CloudServing::validate`].
    pub fn new(serving: &CloudServing) -> Self {
        if let Err(why) = serving.validate() {
            panic!("invalid serving tier: {why}");
        }
        let backends = serving
            .backends
            .iter()
            .map(|b| MicroBackend {
                queue_high: VecDeque::new(),
                queue_low: VecDeque::new(),
                slot_free_us: vec![0; b.slots],
                served_requests: 0,
                batches: 0,
                busy_us: 0,
                batch_sizes: Histogram::new(1.0, BATCH_HIST_BINS),
                sojourn_ms: Histogram::new(SOJOURN_BIN_MS, SOJOURN_BINS),
            })
            .collect();
        RegionMicrosim {
            serving: serving.clone(),
            backends,
            heap: BinaryHeap::new(),
            shed_fraction: 0.0,
        }
    }

    /// The serving-tier template this region runs.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Runs one epoch: interleaves the merged, sorted arrival stream with
    /// the pending service events, pushing every completion (including
    /// completions of requests admitted in earlier epochs) into `out`.
    /// Timer events at or beyond `epoch_end_us` stay queued for the next
    /// epoch.
    ///
    /// `requests` must be sorted by `(arrival_us, device_id)` with every
    /// arrival inside the epoch (debug-asserted).
    pub fn run_epoch(
        &mut self,
        requests: &[OffloadRequest],
        epoch_end_us: u64,
        out: &mut Vec<CompletedRequest>,
    ) {
        debug_assert!(requests
            .windows(2)
            .all(|w| (w[0].arrival_us, w[0].device_id) < (w[1].arrival_us, w[1].device_id)));
        debug_assert!(requests.iter().all(|r| r.arrival_us < epoch_end_us));
        let mut touched = vec![false; self.backends.len()];
        let mut i = 0;
        while i < requests.len() {
            let now = requests[i].arrival_us;
            // Timer events strictly before the arrival instant run first.
            // Events at exactly `now` stay queued: a slot freed at `now`
            // is already visible through `slot_free_us`, and `dispatch`
            // re-checks the linger deadline directly — so same-instant
            // arrivals enqueue *before* any batch at `now` closes and can
            // board it (the documented ordering).
            self.run_timers(now, false, out);
            touched.iter_mut().for_each(|t| *t = false);
            while i < requests.len() && requests[i].arrival_us == now {
                let request = requests[i];
                let backend = self.least_work_backend(now);
                let queue = if request.high_priority {
                    &mut self.backends[backend].queue_high
                } else {
                    &mut self.backends[backend].queue_low
                };
                queue.push_back(request);
                touched[backend] = true;
                i += 1;
            }
            for (backend, hit) in touched.iter().enumerate() {
                if *hit {
                    self.dispatch(backend, now, out);
                }
            }
        }
        self.run_timers(epoch_end_us, false, out);
    }

    /// Drains everything still queued or in flight — the cloud keeps
    /// serving past the horizon so every admitted request completes and
    /// the tail histograms account for the whole population.
    pub fn flush(&mut self, out: &mut Vec<CompletedRequest>) {
        self.run_timers(u64::MAX, true, out);
        debug_assert!(self.backends.iter().all(|b| b.queued() == 0));
    }

    /// Processes pending timer events with `time < limit_us` (or
    /// `<= limit_us` when `inclusive`).
    fn run_timers(&mut self, limit_us: u64, inclusive: bool, out: &mut Vec<CompletedRequest>) {
        while let Some(&Reverse((time, _, backend))) = self.heap.peek() {
            if time > limit_us || (time == limit_us && !inclusive) {
                break;
            }
            self.heap.pop();
            self.dispatch(backend as usize, time, out);
        }
    }

    /// The backend a new arrival joins: least work left, estimated as the
    /// earliest slot gap plus the queue drained at the backend's peak
    /// (full-batch) rate — the discrete analogue of the fluid water-fill.
    /// Ties go to the lowest index.
    fn least_work_backend(&self, now_us: u64) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, (config, backend)) in self.serving.backends.iter().zip(&self.backends).enumerate() {
            let (_, free_at) = backend.earliest_slot();
            let slot_wait_ms = free_at.saturating_sub(now_us) as f64 / 1000.0;
            let score = slot_wait_ms + backend.queued() as f64 / config.full_batch_rate_per_ms();
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Closes every batch `backend` can start at `now`: while a slot is
    /// free and the batcher is ready (`max_batch` waiting, or the oldest
    /// request has lingered out), assemble high-priority-first, occupy the
    /// slot for the affine batch cost, and complete every member. If the
    /// batcher is still filling, schedule the linger expiry instead.
    fn dispatch(&mut self, backend: usize, now_us: u64, out: &mut Vec<CompletedRequest>) {
        let config = &self.serving.backends[backend];
        let linger_us = (config.batching.linger_ms * 1000.0).round() as u64;
        loop {
            let state = &mut self.backends[backend];
            let queued = state.queued();
            if queued == 0 {
                return;
            }
            let (slot, free_at) = state.earliest_slot();
            if free_at > now_us {
                // No executor free: the pending slot-free event re-runs
                // this dispatch when one opens up.
                return;
            }
            let oldest = state.oldest_arrival_us().expect("queue is non-empty");
            let linger_deadline = oldest.saturating_add(linger_us);
            if queued < config.batching.max_batch && now_us < linger_deadline {
                // Still filling: wake up when the oldest request's linger
                // window closes. Stale wakeups re-check and re-arm.
                self.heap
                    .push(Reverse((linger_deadline, EVENT_LINGER, backend as u32)));
                return;
            }
            let size = queued.min(config.batching.max_batch);
            let service_us = (config.batch_service_ms(size as f64) * 1000.0)
                .round()
                .max(1.0) as u64;
            let completion_us = now_us + service_us;
            state.slot_free_us[slot] = completion_us;
            state.batches += 1;
            state.busy_us += service_us;
            state.batch_sizes.record(size as f64);
            for _ in 0..size {
                let request = match state.queue_high.pop_front() {
                    Some(r) => r,
                    None => state.queue_low.pop_front().expect("batch within queue"),
                };
                let sojourn_ms = (completion_us - request.arrival_us) as f64 / 1000.0;
                state.sojourn_ms.record(sojourn_ms);
                state.served_requests += 1;
                out.push(CompletedRequest {
                    request,
                    backend: backend as u32,
                    sojourn_ms,
                });
            }
            self.heap
                .push(Reverse((completion_us, EVENT_SLOT_FREE, backend as u32)));
        }
    }

    /// Total requests waiting across all backends.
    pub fn depth(&self) -> f64 {
        self.backends.iter().map(|b| b.queued() as f64).sum()
    }

    /// The wait (ms) a new arrival of the given class would see at
    /// `now_us`: the least-loaded backend's slot gap plus its queue
    /// drained at the peak batch rate.
    pub fn wait_ms(&self, high_priority: bool, now_us: u64) -> f64 {
        self.serving
            .backends
            .iter()
            .zip(&self.backends)
            .map(|(config, backend)| {
                let (_, free_at) = backend.earliest_slot();
                let slot_wait = free_at.saturating_sub(now_us) as f64 / 1000.0;
                let ahead = if high_priority {
                    backend.queue_high.len()
                } else {
                    backend.queued()
                } as f64;
                slot_wait + ahead / config.full_batch_rate_per_ms()
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// The barrier signal shards read next epoch; updates the damped shed
    /// fraction from the tier state observed at `now_us` (the epoch end).
    pub fn barrier_signal(&mut self, now_us: u64) -> RegionSignal {
        let wait_low = self.wait_ms(false, now_us);
        let target = self.serving.admission.shed_fraction(self.depth(), wait_low);
        self.shed_fraction = damp_shed_fraction(self.shed_fraction, target);
        RegionSignal {
            wait_high_ms: self.wait_ms(true, now_us),
            wait_low_ms: wait_low,
            shed_fraction: self.shed_fraction,
        }
    }

    /// Per-backend cumulative stats, in backend order.
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.serving
            .backends
            .iter()
            .zip(&self.backends)
            .map(|(b, q)| BackendStats {
                name: b.name.clone(),
                slots: b.slots,
                served_jobs: q.served_requests as f64,
                batches: q.batches as f64,
                busy_ms: q.busy_us as f64 / 1000.0 / b.slots as f64,
                batch_sizes: q.batch_sizes.clone(),
                sojourn_ms: q.sojourn_ms.clone(),
            })
            .collect()
    }
}

impl fmt::Display for RegionMicrosim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "per-request tier: {} backend(s), {:.0} requests queued",
            self.backends.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capacity() -> CloudCapacity {
        CloudCapacity::new(10, 10.0) // 1 job/ms drain rate
    }

    fn single_queue() -> RegionServing {
        RegionServing::new(&CloudServing::from(capacity()))
    }

    #[test]
    fn empty_tier_has_no_wait() {
        let q = single_queue();
        assert_eq!(q.wait_ms(false), 0.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn overload_accumulates_backlog_and_wait() {
        let mut q = single_queue();
        // 1 job/ms drain; admit 2000 jobs per 1000 ms epoch -> +1000 backlog.
        q.admit(0, 2000);
        q.drain(1000.0);
        assert!((q.depth() - 1000.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 1000.0).abs() < 1e-9);
        // Underload drains it back down.
        q.admit(0, 0);
        q.drain(1000.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn adequate_capacity_keeps_queue_empty() {
        let mut q = single_queue();
        for _ in 0..10 {
            q.admit(0, 500); // half the epoch's drain budget
            q.drain(1000.0);
            assert_eq!(q.depth(), 0.0);
        }
    }

    #[test]
    fn priority_class_waits_only_behind_high_backlog() {
        let mut q = single_queue();
        q.admit(300, 3000);
        // Before draining: high sees 300 jobs ahead, low sees all 3300.
        assert!((q.wait_ms(true) - 300.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 3300.0).abs() < 1e-9);
        // Draining serves the high class first.
        q.drain(300.0);
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.wait_ms(false) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn drain_is_work_conserving_across_classes() {
        let mut q = single_queue();
        q.admit(100, 100);
        q.drain(150.0); // budget 150: 100 high + 50 low
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.depth() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        CloudCapacity::new(0, 5.0);
    }

    #[test]
    #[should_panic(expected = "high_fraction")]
    fn bad_priority_fraction_rejected() {
        CloudCapacity::new(1, 5.0).with_priority(1.5);
    }

    #[test]
    fn capacity_converts_to_equivalent_backend() {
        let serving = CloudServing::from(capacity().with_priority(0.25));
        assert_eq!(serving.backends.len(), 1);
        let b = &serving.backends[0];
        assert_eq!(b.slots, 10);
        assert_eq!(b.batching.max_batch, 1);
        // Peak rate equals the old drain rate bit-for-bit.
        assert_eq!(b.full_batch_rate_per_ms(), capacity().drain_rate_per_ms());
        assert_eq!(
            serving.discipline,
            QueueDiscipline::Priority {
                high_fraction: 0.25
            }
        );
    }

    #[test]
    fn batching_amortizes_base_cost() {
        // base 32 ms + 1 ms/item, batch 32: per-item cost 2 ms vs 33 ms.
        let unbatched = BackendConfig::new("gpu", 1, 32.0, 1.0);
        let batched = unbatched.clone().with_batching(32, 100.0);
        assert!((unbatched.full_batch_rate_per_ms() - 1.0 / 33.0).abs() < 1e-12);
        assert!((batched.full_batch_rate_per_ms() - 32.0 / 64.0).abs() < 1e-12);

        // Under the same overload the batched tier drains ~16.5x faster:
        // two 10 s epochs clear all 10 000 jobs, while the unbatched
        // backend has served only ~600.
        let mut plain = RegionServing::new(&CloudServing::new(vec![unbatched]));
        let mut tier = RegionServing::new(&CloudServing::new(vec![batched]));
        plain.admit(0, 10_000);
        tier.admit(0, 10_000);
        for _ in 0..2 {
            plain.drain(10_000.0);
            tier.drain(10_000.0);
        }
        assert_eq!(tier.depth(), 0.0, "batched tier should have cleared");
        assert!(
            plain.depth() > 9_000.0,
            "unbatched backlog should persist, got {}",
            plain.depth()
        );
    }

    #[test]
    fn sparse_traffic_batches_by_linger_fill() {
        // 0.2 jobs/ms arriving, linger 40 ms => fluid batches of ~8, and
        // at batch 8 the backend keeps up (rate 8/18 ≈ 0.44 jobs/ms).
        let config = BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(64, 40.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![config]));
        tier.admit(0, 200);
        tier.drain(1000.0);
        assert_eq!(tier.depth(), 0.0, "batch 8 keeps up with 0.2 jobs/ms");
        let stats = tier.backend_stats().remove(0);
        assert_eq!(stats.served_jobs, 200.0);
        let mean_batch = stats.served_jobs / stats.batches;
        let hist = stats.batch_sizes;
        assert!(
            (7.0..=9.0).contains(&mean_batch),
            "linger fill should set batch ≈ 8, got {mean_batch}"
        );
        assert!(hist.count() > 0);
        // Sparse batches linger: the published wait includes the linger tax.
        assert!(tier.wait_ms(false) > 0.0);
    }

    #[test]
    fn water_fill_prefers_least_loaded_backend() {
        let fast = BackendConfig::new("fast", 4, 10.0, 0.0);
        let slow = BackendConfig::new("slow", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![fast, slow]));
        // Equal completion times at start: arrivals split 4:1 by capacity.
        tier.admit(0, 1000);
        let depths: Vec<f64> = tier
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        assert!((depths[0] - 800.0).abs() < 1e-6, "fast got {}", depths[0]);
        assert!((depths[1] - 200.0).abs() < 1e-6, "slow got {}", depths[1]);
        // Completion times equalize.
        assert!((depths[0] / 0.4 - depths[1] / 0.1).abs() < 1e-6);
    }

    #[test]
    fn water_fill_tops_up_emptier_backend_first() {
        let a = BackendConfig::new("a", 1, 10.0, 0.0);
        let b = BackendConfig::new("b", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![a, b]));
        tier.admit(0, 100);
        tier.drain(0.0); // no drain budget; just close the epoch
                         // Backend queues now hold 50/50. Push one backend ahead by hand.
        tier.queues[0].backlog_low += 30.0;
        // The next 30 jobs must all go to the emptier backend.
        tier.admit(0, 30);
        let d0 = tier.queues[0].backlog_high + tier.queues[0].backlog_low;
        let d1 = tier.queues[1].backlog_high + tier.queues[1].backlog_low;
        assert!((d0 - d1).abs() < 1e-9, "got {d0} vs {d1}");
    }

    #[test]
    fn admission_shed_fraction_tracks_overload() {
        let open = AdmissionPolicy::Open;
        assert_eq!(open.shed_fraction(1e9, 1e9), 0.0);
        let depth = AdmissionPolicy::QueueDepth { max_jobs: 100.0 };
        assert_eq!(depth.shed_fraction(50.0, 0.0), 0.0);
        assert!((depth.shed_fraction(200.0, 0.0) - 0.5).abs() < 1e-12);
        let deadline = AdmissionPolicy::Deadline {
            max_wait_ms: 1000.0,
        };
        assert_eq!(deadline.shed_fraction(0.0, 500.0), 0.0);
        assert!((deadline.shed_fraction(0.0, 4000.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn signal_reports_waits_and_shedding() {
        let config = BackendConfig::new("gpu", 10, 10.0, 0.0);
        let serving = CloudServing::new(vec![config])
            .with_admission(AdmissionPolicy::Deadline { max_wait_ms: 100.0 });
        let mut tier = RegionServing::new(&serving);
        tier.admit(50, 2000);
        tier.drain(1000.0);
        let signal = tier.signal();
        assert!(signal.wait_low_ms > 100.0);
        assert!(signal.shed_fraction > 0.0 && signal.shed_fraction < 1.0);
        assert!(signal.wait_high_ms <= signal.wait_low_ms);
        assert_eq!(signal.wait_ms(true), signal.wait_high_ms);
        assert_eq!(signal.wait_ms(false), signal.wait_low_ms);
    }

    #[test]
    fn validate_rejects_bad_tiers() {
        assert!(CloudServing::new(vec![]).validate().is_err());
        let dup = CloudServing::new(vec![
            BackendConfig::new("x", 1, 1.0, 0.0),
            BackendConfig::new("x", 1, 1.0, 0.0),
        ]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let bad_admission = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_admission(AdmissionPolicy::QueueDepth { max_jobs: 0.0 });
        assert!(bad_admission.validate().is_err());
        let bad_failover = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: -1.0 });
        assert!(bad_failover.validate().is_err());
    }

    #[test]
    fn display_shows_state() {
        let mut q = single_queue();
        q.admit(5, 10);
        assert!(format!("{q}").contains("15.0 jobs"));
    }

    // ---- per-request microsimulation ----

    fn request(arrival_us: u64, device_id: u64) -> OffloadRequest {
        OffloadRequest {
            arrival_us,
            device_id,
            high_priority: false,
            origin_region: 0,
            failed_over: false,
            base_latency_ms: 0.0,
            energy_mj: 0.0,
            switched: false,
        }
    }

    fn run_all(sim: &mut RegionMicrosim, requests: &[OffloadRequest]) -> Vec<CompletedRequest> {
        let mut out = Vec::new();
        let end = requests.last().map_or(1, |r| r.arrival_us + 1);
        sim.run_epoch(requests, end, &mut out);
        sim.flush(&mut out);
        out
    }

    #[test]
    fn microsim_zero_linger_serves_single_request_batches() {
        // Unbatched 10 ms backend: each request is its own batch and an
        // idle tier serves it immediately — sojourn is exactly the
        // single-item service time.
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 10.0, 0.0)]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..4).map(|i| request(i * 100_000, i)).collect();
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 4);
        for c in &done {
            assert!((c.sojourn_ms - 10.0).abs() < 1e-9, "got {}", c.sojourn_ms);
        }
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 4.0);
        assert_eq!(stats.batch_sizes.min(), 1.0);
        assert_eq!(stats.batch_sizes.max(), 1.0);
        assert_eq!(stats.sojourn_ms.count(), 4);
        assert!((stats.busy_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn microsim_same_instant_arrivals_share_a_batch() {
        // Four arrivals at the same microsecond with max_batch 4 close as
        // one full batch even with zero linger.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(4, 0.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..4).map(|i| request(5_000, i)).collect();
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 4);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0, "one full batch expected");
        // Batch of 4: service 10 + 4·1 = 14 ms for every member.
        for c in &done {
            assert!((c.sojourn_ms - 14.0).abs() < 1e-9, "got {}", c.sojourn_ms);
        }
    }

    #[test]
    fn microsim_linger_expiry_closes_partial_batches() {
        // Two arrivals 5 ms apart, max_batch 32, linger 50 ms: the batch
        // closes 50 ms after the first arrival with both requests aboard.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(32, 50.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests = vec![request(0, 0), request(5_000, 1)];
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 2);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0);
        // Service of batch 2 = 12 ms, started at linger expiry (50 ms).
        let first = done.iter().find(|c| c.request.device_id == 0).unwrap();
        let second = done.iter().find(|c| c.request.device_id == 1).unwrap();
        assert!(
            (first.sojourn_ms - 62.0).abs() < 1e-9,
            "{}",
            first.sojourn_ms
        );
        assert!(
            (second.sojourn_ms - 57.0).abs() < 1e-9,
            "{}",
            second.sojourn_ms
        );
    }

    #[test]
    fn microsim_arrival_at_linger_deadline_boards_the_closing_batch() {
        // The documented intra-epoch ordering: at equal timestamps,
        // same-microsecond arrivals enqueue before any batch closes. An
        // arrival landing exactly when the oldest request's linger
        // expires must therefore share its batch.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(32, 50.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests = vec![request(0, 0), request(50_000, 1)];
        let done = run_all(&mut sim, &requests);
        assert_eq!(done.len(), 2);
        let stats = sim.backend_stats().remove(0);
        assert_eq!(stats.batches, 1.0, "both requests share one batch");
        // Batch of 2 closes at 50 ms, service 10 + 2·1 = 12 ms.
        let first = done.iter().find(|c| c.request.device_id == 0).unwrap();
        let second = done.iter().find(|c| c.request.device_id == 1).unwrap();
        assert!(
            (first.sojourn_ms - 62.0).abs() < 1e-9,
            "{}",
            first.sojourn_ms
        );
        assert!(
            (second.sojourn_ms - 12.0).abs() < 1e-9,
            "{}",
            second.sojourn_ms
        );
    }

    #[test]
    fn microsim_single_slot_fifo_completions_are_monotone() {
        // One slot + FIFO ⇒ batches run strictly in order, so completion
        // times are non-decreasing in arrival order.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 25.0, 2.0).with_batching(8, 30.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..64u64)
            .map(|i| request(i.wrapping_mul(0x9E37_79B9) % 200_000, i))
            .collect();
        let mut sorted = requests.clone();
        sorted.sort_unstable_by_key(|r| (r.arrival_us, r.device_id));
        let done = run_all(&mut sim, &sorted);
        assert_eq!(done.len(), 64);
        let mut completion_by_arrival: Vec<(u64, u64, f64)> = done
            .iter()
            .map(|c| {
                let completion = c.request.arrival_us + (c.sojourn_ms * 1000.0).round() as u64;
                (c.request.arrival_us, c.request.device_id, completion as f64)
            })
            .collect();
        completion_by_arrival.sort_unstable_by_key(|&(a, d, _)| (a, d));
        for w in completion_by_arrival.windows(2) {
            assert!(
                w[0].2 <= w[1].2,
                "FIFO single-slot completions must be monotone: {w:?}"
            );
        }
    }

    #[test]
    fn microsim_priority_class_fills_batches_first() {
        // Saturate a single slot, then queue one high + many low: the
        // high-priority request must board the next batch.
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, 100.0, 0.0).with_batching(2, 0.0)
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let mut requests: Vec<_> = (0..6).map(|i| request(i * 10, i)).collect();
        requests[5].high_priority = true;
        let mut high = requests[5];
        high.arrival_us = 55;
        requests[5] = high;
        requests.sort_unstable_by_key(|r| (r.arrival_us, r.device_id));
        let done = run_all(&mut sim, &requests);
        let high_done = done.iter().find(|c| c.request.high_priority).unwrap();
        // First batch (2 requests) starts immediately; the high-priority
        // arrival boards the second batch ahead of three earlier lows.
        let high_completion = high_done.request.arrival_us as f64 / 1000.0 + high_done.sojourn_ms;
        let worst_low = done
            .iter()
            .filter(|c| !c.request.high_priority)
            .map(|c| c.request.arrival_us as f64 / 1000.0 + c.sojourn_ms)
            .fold(0.0f64, f64::max);
        assert!(
            high_completion < worst_low,
            "high priority must finish before the last low: {high_completion} vs {worst_low}"
        );
    }

    #[test]
    fn microsim_flush_drains_everything_and_signal_sheds() {
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 100.0, 0.0)])
            .with_admission(AdmissionPolicy::QueueDepth { max_jobs: 4.0 });
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..50).map(|i| request(i, i)).collect();
        let mut out = Vec::new();
        sim.run_epoch(&requests, 1_000, &mut out);
        assert!(sim.depth() > 4.0, "backlog should persist at the barrier");
        let signal = sim.barrier_signal(1_000);
        assert!(signal.shed_fraction > 0.0);
        assert!(signal.wait_low_ms > 0.0);
        assert!(signal.wait_high_ms <= signal.wait_low_ms);
        sim.flush(&mut out);
        assert_eq!(out.len(), 50, "flush must complete every request");
        assert_eq!(sim.depth(), 0.0);
        assert!(format!("{sim}").contains("0 requests queued"));
    }

    #[test]
    fn microsim_spreads_arrivals_across_backends() {
        // Two identical backends: consecutive arrivals with queued work
        // alternate by least-work-left instead of piling on backend 0.
        let serving = CloudServing::new(vec![
            BackendConfig::new("a", 1, 50.0, 0.0),
            BackendConfig::new("b", 1, 50.0, 0.0),
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        let requests: Vec<_> = (0..8).map(|i| request(i, i)).collect();
        let done = run_all(&mut sim, &requests);
        let on_a = done.iter().filter(|c| c.backend == 0).count();
        let on_b = done.iter().filter(|c| c.backend == 1).count();
        assert_eq!(
            on_a, 4,
            "least-work dispatch should balance, got {on_a}/{on_b}"
        );
        assert_eq!(on_b, 4);
    }

    #[test]
    fn fidelity_default_is_fluid() {
        assert_eq!(CloudSimFidelity::default(), CloudSimFidelity::Fluid);
        assert_ne!(CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest);
    }
}
