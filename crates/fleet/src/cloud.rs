//! The shared cloud tier: finite concurrent-inference capacity per region.
//!
//! The paper idealizes the cloud as infinitely fast (`L_cloud = 0`); at
//! fleet scale that assumption breaks first. Each region gets a
//! [`CloudRegionQueue`]: `capacity` concurrent inference slots, each taking
//! `service_ms` per offloaded inference, behind a FIFO or two-class
//! priority discipline. The queue is advanced deterministically at epoch
//! barriers in fluid form — arrivals are admitted as job counts, slots
//! drain `capacity / service_ms` jobs per millisecond, and the published
//! wait is the time the current backlog needs to drain ahead of a new
//! arrival. Shards read that wait for a whole epoch (one-epoch lag), which
//! is what keeps epochs embarrassingly parallel.

use std::fmt;

/// Queueing discipline for a region's cloud slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Single class: every offloaded inference waits behind the full
    /// backlog.
    Fifo,
    /// Two classes: the given fraction of devices (chosen per-device,
    /// seeded) is high-priority and waits only behind other high-priority
    /// work; everyone else waits behind everything.
    Priority {
        /// Fraction of devices in the high-priority class, in `[0, 1]`.
        high_fraction: f64,
    },
}

/// Capacity description for the shared cloud, applied per region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudCapacity {
    /// Concurrent inference slots per region.
    pub slots_per_region: usize,
    /// Cloud-side service time per offloaded inference (ms).
    pub service_ms: f64,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
}

impl CloudCapacity {
    /// FIFO capacity with the given slots and per-inference service time.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_region` is zero or `service_ms` is not
    /// positive/finite.
    pub fn new(slots_per_region: usize, service_ms: f64) -> Self {
        assert!(slots_per_region > 0, "cloud needs at least one slot");
        assert!(
            service_ms.is_finite() && service_ms > 0.0,
            "service_ms must be positive and finite"
        );
        CloudCapacity {
            slots_per_region,
            service_ms,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Jobs one region can complete per millisecond.
    pub fn drain_rate_per_ms(&self) -> f64 {
        self.slots_per_region as f64 / self.service_ms
    }
}

/// One region's deterministic cloud queue state.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudRegionQueue {
    capacity: CloudCapacity,
    backlog_high: f64,
    backlog_low: f64,
}

impl CloudRegionQueue {
    /// An empty queue with the given capacity.
    pub fn new(capacity: CloudCapacity) -> Self {
        CloudRegionQueue {
            capacity,
            backlog_high: 0.0,
            backlog_low: 0.0,
        }
    }

    /// Admits one epoch's offloaded inferences (split by priority class).
    pub fn admit(&mut self, high: u64, low: u64) {
        self.backlog_high += high as f64;
        self.backlog_low += low as f64;
    }

    /// Drains the queue for `epoch_ms` of wall-clock: high-priority work
    /// first, then the FIFO backlog.
    pub fn drain(&mut self, epoch_ms: f64) {
        let mut budget = self.capacity.drain_rate_per_ms() * epoch_ms;
        let high_served = self.backlog_high.min(budget);
        self.backlog_high -= high_served;
        budget -= high_served;
        self.backlog_low = (self.backlog_low - budget).max(0.0);
    }

    /// The wait (ms) a new arrival of the given class experiences: the time
    /// the backlog ahead of it needs to drain.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        let ahead = if high_priority {
            self.backlog_high
        } else {
            self.backlog_high + self.backlog_low
        };
        ahead / self.capacity.drain_rate_per_ms()
    }

    /// Total queued jobs.
    pub fn depth(&self) -> f64 {
        self.backlog_high + self.backlog_low
    }

    /// The capacity this queue enforces.
    pub fn capacity(&self) -> &CloudCapacity {
        &self.capacity
    }
}

impl fmt::Display for CloudRegionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cloud queue: {:.1} jobs queued ({:.1} high), wait {:.1} ms",
            self.depth(),
            self.backlog_high,
            self.wait_ms(false)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capacity() -> CloudCapacity {
        CloudCapacity::new(10, 10.0) // 1 job/ms drain rate
    }

    #[test]
    fn empty_queue_has_no_wait() {
        let q = CloudRegionQueue::new(capacity());
        assert_eq!(q.wait_ms(false), 0.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn overload_accumulates_backlog_and_wait() {
        let mut q = CloudRegionQueue::new(capacity());
        // 1 job/ms drain; admit 2000 jobs per 1000 ms epoch -> +1000 backlog.
        q.admit(0, 2000);
        q.drain(1000.0);
        assert!((q.depth() - 1000.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 1000.0).abs() < 1e-9);
        // Underload drains it back down.
        q.admit(0, 0);
        q.drain(1000.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn adequate_capacity_keeps_queue_empty() {
        let mut q = CloudRegionQueue::new(capacity());
        for _ in 0..10 {
            q.admit(0, 500); // half the epoch's drain budget
            q.drain(1000.0);
            assert_eq!(q.depth(), 0.0);
        }
    }

    #[test]
    fn priority_class_waits_only_behind_high_backlog() {
        let mut q = CloudRegionQueue::new(capacity());
        q.admit(300, 3000);
        // Before draining: high sees 300 jobs ahead, low sees all 3300.
        assert!((q.wait_ms(true) - 300.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 3300.0).abs() < 1e-9);
        // Draining serves the high class first.
        q.drain(300.0);
        assert_eq!(q.wait_ms(true), 0.0);
        assert!((q.wait_ms(false) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn drain_is_work_conserving_across_classes() {
        let mut q = CloudRegionQueue::new(capacity());
        q.admit(100, 100);
        q.drain(150.0); // budget 150: 100 high + 50 low
        assert_eq!(q.wait_ms(true), 0.0);
        assert!((q.depth() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        CloudCapacity::new(0, 5.0);
    }

    #[test]
    #[should_panic(expected = "high_fraction")]
    fn bad_priority_fraction_rejected() {
        CloudCapacity::new(1, 5.0).with_priority(1.5);
    }

    #[test]
    fn display_shows_state() {
        let mut q = CloudRegionQueue::new(capacity());
        q.admit(5, 10);
        assert!(format!("{q}").contains("15.0 jobs"));
    }
}
