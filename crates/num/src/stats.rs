//! Summary statistics and regression-quality metrics.
//!
//! Used to report how well the fitted per-layer performance predictors of
//! `lens-device` track the analytic ground truth (R², MAPE), and for trace
//! statistics in `lens-wireless`.

use crate::NumError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, NumError> {
    if xs.is_empty() {
        return Err(NumError::EmptyInput("mean"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64, NumError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, NumError> {
    Ok(variance(xs)?.sqrt())
}

/// Coefficient of determination R² of predictions vs targets.
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean predictor. When the targets are constant, returns 1.0 if predictions
/// match them exactly and 0.0 otherwise.
///
/// # Errors
///
/// * [`NumError::EmptyInput`] for empty inputs.
/// * [`NumError::DimensionMismatch`] when lengths differ.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> Result<f64, NumError> {
    check_paired(predictions, targets, "r_squared")?;
    let m = mean(targets)?;
    let ss_tot: f64 = targets.iter().map(|y| (y - m) * (y - m)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (y - p) * (y - p))
        .sum();
    if ss_tot <= f64::EPSILON {
        return Ok(if ss_res <= f64::EPSILON { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Mean absolute percentage error, in percent. Targets equal to zero are
/// skipped; if all targets are zero the result is an error.
///
/// # Errors
///
/// * [`NumError::EmptyInput`] for empty inputs or all-zero targets.
/// * [`NumError::DimensionMismatch`] when lengths differ.
pub fn mape(predictions: &[f64], targets: &[f64]) -> Result<f64, NumError> {
    check_paired(predictions, targets, "mape")?;
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, y) in predictions.iter().zip(targets) {
        if y.abs() > f64::EPSILON {
            total += ((p - y) / y).abs();
            count += 1;
        }
    }
    if count == 0 {
        return Err(NumError::EmptyInput("mape (all targets zero)"));
    }
    Ok(100.0 * total / count as f64)
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64), NumError> {
    if xs.is_empty() {
        return Err(NumError::EmptyInput("min_max"));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

/// Standardization parameters (mean, std) for z-scoring a data set, with
/// degenerate scales replaced by 1 so the transform is always invertible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    mean: f64,
    scale: f64,
}

impl Standardizer {
    /// Fits a standardizer to the data.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::EmptyInput`] for an empty slice.
    pub fn fit(xs: &[f64]) -> Result<Self, NumError> {
        let m = mean(xs)?;
        let mut s = std_dev(xs)?;
        if s < 1e-12 {
            s = 1.0;
        }
        Ok(Standardizer { mean: m, scale: s })
    }

    /// Maps a raw value to z-score space.
    pub fn transform(&self, x: f64) -> f64 {
        (x - self.mean) / self.scale
    }

    /// Maps a z-score back to raw space.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.scale + self.mean
    }

    /// Scales a standard deviation (no mean shift) back to raw space.
    pub fn inverse_scale(&self, s: f64) -> f64 {
        s * self.scale
    }

    /// The fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The fitted (non-degenerate) scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

fn check_paired(a: &[f64], b: &[f64], what: &'static str) -> Result<(), NumError> {
    if a.is_empty() || b.is_empty() {
        return Err(NumError::EmptyInput(what));
    }
    if a.len() != b.len() {
        return Err(NumError::DimensionMismatch {
            op: what,
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(min_max(&[]).is_err());
        assert!(r_squared(&[], &[]).is_err());
        assert!(mape(&[], &[]).is_err());
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r_squared(&y, &y).unwrap(), 1.0);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r_squared_constant_targets() {
        assert_eq!(r_squared(&[3.0, 3.0], &[3.0, 3.0]).unwrap(), 1.0);
        assert_eq!(r_squared(&[1.0, 5.0], &[3.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn mape_known_value() {
        let pred = [110.0, 90.0];
        let target = [100.0, 100.0];
        assert!((mape(&pred, &target).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let pred = [5.0, 110.0];
        let target = [0.0, 100.0];
        assert!((mape(&pred, &target).unwrap() - 10.0).abs() < 1e-12);
        assert!(mape(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
    }

    #[test]
    fn standardizer_round_trips() {
        let xs = [10.0, 20.0, 30.0];
        let s = Standardizer::fit(&xs).unwrap();
        for &x in &xs {
            assert!((s.inverse(s.transform(x)) - x).abs() < 1e-12);
        }
        assert_eq!(s.mean(), 20.0);
    }

    #[test]
    fn standardizer_degenerate_scale() {
        let s = Standardizer::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.scale(), 1.0);
        assert_eq!(s.transform(5.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_standardizer_round_trip(xs in proptest::collection::vec(-1e3f64..1e3, 2..40)) {
            let s = Standardizer::fit(&xs).unwrap();
            for &x in &xs {
                prop_assert!((s.inverse(s.transform(x)) - x).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_r_squared_at_most_one(
            pairs in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 3..40)
        ) {
            let (pred, target): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let r2 = r_squared(&pred, &target).unwrap();
            prop_assert!(r2 <= 1.0 + 1e-12);
        }
    }
}
