//! Numeric substrate for the LENS reproduction.
//!
//! The offline dependency whitelist for this repository intentionally
//! excludes heavyweight numeric crates (`nalgebra`, `ndarray`, `rand_distr`),
//! so the pieces the rest of the workspace needs are implemented here from
//! scratch and kept small and auditable:
//!
//! * [`linalg`] — a dense row-major [`Matrix`](linalg::Matrix) with the
//!   operations Gaussian-process regression requires (products, Cholesky
//!   factorization, triangular solves).
//! * [`ridge`] — closed-form ridge regression used by the per-layer
//!   performance predictors of `lens-device`.
//! * [`dist`] — seeded Gaussian / log-normal sampling via Box–Muller, used
//!   for measurement noise and wireless throughput traces.
//! * [`stats`] — summary statistics and error metrics (R², MAPE) used when
//!   validating fitted predictors.
//!
//! # Examples
//!
//! ```
//! use lens_num::linalg::Matrix;
//!
//! # fn main() -> Result<(), lens_num::NumError> {
//! // Solve the SPD system A x = b through a Cholesky factorization.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let chol = a.cholesky()?;
//! let x = chol.solve(&[2.0, 1.0]);
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod dist;
pub mod linalg;
pub mod ridge;
pub mod stats;

use std::error::Error;
use std::fmt;

/// Errors produced by the numeric substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// A matrix was constructed from rows of inconsistent lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// Dimensions of two operands do not line up for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that became non-positive.
        pivot: usize,
    },
    /// An operation that requires a non-empty data set received none.
    EmptyInput(&'static str),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::RaggedRows { expected, found } => {
                write!(f, "ragged rows: expected length {expected}, found {found}")
            }
            NumError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NumError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            NumError::EmptyInput(what) => write!(f, "empty input for {what}"),
        }
    }
}

impl Error for NumError {}
