//! Seeded sampling from the continuous distributions the workspace needs.
//!
//! `rand_distr` is not on the offline dependency whitelist, so the Gaussian
//! is generated with the Box–Muller transform and the log-normal on top of
//! it. All functions take a caller-provided RNG so experiments stay
//! reproducible end to end.

use rand::Rng;

/// Draws one standard normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = lens_num::dist::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, std_dev²)` sample.
///
/// # Panics
///
/// Panics if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "std_dev must be finite and non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws one log-normal sample whose *logarithm* has the given mean and
/// standard deviation.
///
/// # Panics
///
/// Panics if `log_std_dev` is negative or non-finite.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, log_mean: f64, log_std_dev: f64) -> f64 {
    normal(rng, log_mean, log_std_dev).exp()
}

/// Draws a vector of non-negative weights summing to one (a flat Dirichlet
/// sample), used for the random scalarizations of the MOBO acquisition.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn simplex_weights<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Vec<f64> {
    assert!(k > 0, "cannot sample a 0-dimensional simplex");
    // Exponential(1) draws normalized to sum 1 are Dirichlet(1,...,1).
    let mut w: Vec<f64> = (0..k)
        .map(|_| {
            let mut u: f64 = rng.gen();
            while u <= f64::MIN_POSITIVE {
                u = rng.gen();
            }
            -u.ln()
        })
        .collect();
    let total: f64 = w.iter().sum();
    for wi in &mut w {
        *wi /= total;
    }
    w
}

/// Multiplicative noise factor `exp(N(0, sigma))`, clamped to a sane range.
///
/// This is how the synthetic measurement campaign perturbs analytic
/// ground-truth latency/power to emulate real profiling jitter.
pub fn multiplicative_noise<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    log_normal(rng, 0.0, sigma).clamp(0.25, 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 5.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 1.0, 0.75) > 0.0);
        }
    }

    #[test]
    fn log_normal_median_is_exp_log_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..20_001)
            .map(|_| log_normal(&mut rng, 2.0, 0.5))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - 2f64.exp()).abs() / 2f64.exp() < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn simplex_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for k in 1..=5 {
            let w = simplex_weights(&mut rng, k);
            assert_eq!(w.len(), k);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "0-dimensional")]
    fn simplex_weights_zero_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        simplex_weights(&mut rng, 0);
    }

    #[test]
    fn multiplicative_noise_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5000 {
            let f = multiplicative_noise(&mut rng, 0.3);
            assert!((0.25..=4.0).contains(&f));
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
