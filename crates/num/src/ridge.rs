//! Closed-form ridge regression.
//!
//! The per-layer performance prediction models of §IV.C are, as in
//! Neurosurgeon, small regressions over engineered layer features. Ridge
//! (L2-regularized least squares) is solved exactly through the normal
//! equations and a Cholesky factorization:
//!
//! `w = (XᵀX + λI)⁻¹ Xᵀ y`
//!
//! Features are standardized internally so the regularization acts uniformly
//! and the fit is well-conditioned even when features span many orders of
//! magnitude (e.g. MAC counts vs kernel sizes).

use crate::linalg::{dot, Matrix};
use crate::NumError;

/// A fitted ridge regression model.
///
/// # Examples
///
/// ```
/// use lens_num::ridge::RidgeRegression;
///
/// # fn main() -> Result<(), lens_num::NumError> {
/// // y = 2*x0 + 1 with a small quadratic feature that stays unused.
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| {
///     let x = i as f64 * 0.1;
///     vec![x, x * x]
/// }).collect();
/// let ys: Vec<f64> = xs.iter().map(|f| 2.0 * f[0] + 1.0).collect();
/// let model = RidgeRegression::fit(&xs, &ys, 1e-6)?;
/// let pred = model.predict(&[0.55, 0.3025]);
/// assert!((pred - 2.1).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
    feature_means: Vec<f64>,
    feature_scales: Vec<f64>,
}

impl RidgeRegression {
    /// Fits the model to rows of features `xs` and targets `ys` with
    /// regularization strength `lambda`.
    ///
    /// # Errors
    ///
    /// * [`NumError::EmptyInput`] if `xs` is empty or has zero-width rows.
    /// * [`NumError::RaggedRows`] if feature rows disagree in length.
    /// * [`NumError::DimensionMismatch`] if `xs.len() != ys.len()`.
    pub fn fit<R: AsRef<[f64]>>(xs: &[R], ys: &[f64], lambda: f64) -> Result<Self, NumError> {
        if xs.is_empty() {
            return Err(NumError::EmptyInput("ridge regression features"));
        }
        if xs.len() != ys.len() {
            return Err(NumError::DimensionMismatch {
                op: "ridge fit",
                lhs: (xs.len(), 0),
                rhs: (ys.len(), 0),
            });
        }
        let d = xs[0].as_ref().len();
        if d == 0 {
            return Err(NumError::EmptyInput("ridge regression feature width"));
        }
        for row in xs {
            if row.as_ref().len() != d {
                return Err(NumError::RaggedRows {
                    expected: d,
                    found: row.as_ref().len(),
                });
            }
        }
        let n = xs.len();

        // Standardize features; constant features get scale 1 (weight will
        // be driven to 0 by the regularizer since the column is all-zero).
        let mut means = vec![0.0; d];
        for row in xs {
            for (m, &v) in means.iter_mut().zip(row.as_ref()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut scales = vec![0.0; d];
        for row in xs {
            for ((s, &v), m) in scales.iter_mut().zip(row.as_ref()).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut scales {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        let y_mean = ys.iter().sum::<f64>() / n as f64;

        let x = Matrix::from_fn(n, d, |i, j| (xs[i].as_ref()[j] - means[j]) / scales[j]);
        let xt = x.transpose();
        let gram = xt.matmul(&x)?.add_diagonal(lambda.max(1e-12));
        let yc: Vec<f64> = ys.iter().map(|&y| y - y_mean).collect();
        let xty = xt.matvec(&yc)?;
        let chol = gram.cholesky()?;
        let weights = chol.solve(&xty);

        Ok(RidgeRegression {
            weights,
            intercept: y_mean,
            feature_means: means,
            feature_scales: scales,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature width.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature width mismatch in ridge predict"
        );
        let standardized: Vec<f64> = features
            .iter()
            .zip(&self.feature_means)
            .zip(&self.feature_scales)
            .map(|((&v, m), s)| (v - m) / s)
            .collect();
        self.intercept + dot(&standardized, &self.weights)
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.weights.len()
    }

    /// The fitted weights in standardized feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept (mean of the training targets).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_linear_function() {
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|f| 3.0 * f[0] - 2.0 * f[1] + 5.0).collect();
        let model = RidgeRegression::fit(&xs, &ys, 1e-8).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-6);
        }
    }

    #[test]
    fn handles_constant_feature() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|f| 2.0 * f[0]).collect();
        let model = RidgeRegression::fit(&xs, &ys, 1e-6).unwrap();
        assert!((model.predict(&[4.0, 1.0]) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_errors() {
        let xs: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            RidgeRegression::fit(&xs, &[], 1.0),
            Err(NumError::EmptyInput(_))
        ));
    }

    #[test]
    fn mismatched_targets_error() {
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            RidgeRegression::fit(&xs, &[1.0], 1.0),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ragged_features_error() {
        let xs = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            RidgeRegression::fit(&xs, &[1.0, 2.0], 1.0),
            Err(NumError::RaggedRows { .. })
        ));
    }

    #[test]
    fn strong_regularization_shrinks_towards_mean() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|f| 3.0 * f[0]).collect();
        let weak = RidgeRegression::fit(&xs, &ys, 1e-8).unwrap();
        let strong = RidgeRegression::fit(&xs, &ys, 1e6).unwrap();
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        // The heavily regularized model barely moves off the mean.
        assert!((strong.predict(&[19.0]) - y_mean).abs() < 1.0);
        assert!((weak.predict(&[19.0]) - 57.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_wrong_width_panics() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![3.0, 1.0]];
        let model = RidgeRegression::fit(&xs, &[1.0, 2.0, 3.0], 1e-3).unwrap();
        model.predict(&[1.0]);
    }

    proptest! {
        /// With negligible regularization and exact linear targets, training
        /// predictions match targets.
        #[test]
        fn prop_interpolates_linear_targets(
            w in proptest::collection::vec(-4.0f64..4.0, 3),
            b in -5.0f64..5.0,
            n in 8usize..30,
        ) {
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![
                    (i as f64 * 0.37).sin() * 3.0,
                    (i as f64 * 0.11).cos() * 2.0,
                    i as f64 * 0.2,
                ])
                .collect();
            let ys: Vec<f64> = xs.iter().map(|x| dot_slice(x, &w) + b).collect();
            let model = RidgeRegression::fit(&xs, &ys, 1e-9).unwrap();
            for (x, y) in xs.iter().zip(&ys) {
                prop_assert!((model.predict(x) - y).abs() < 1e-4);
            }
        }
    }

    fn dot_slice(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}
