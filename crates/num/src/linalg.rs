//! Dense row-major matrices with the operations needed for Gaussian-process
//! regression: products, transpose, Cholesky factorization and triangular
//! solves.
//!
//! The implementation favours clarity over blocked performance; the matrices
//! handled by the LENS search (kernel Grams of a few hundred points) are
//! small enough that a straightforward `O(n^3)` Cholesky is more than fast
//! enough, and a Criterion bench (`gp_fit`) tracks the cubic scaling the
//! paper refers to in §IV.D.

use crate::NumError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major, `f64` matrix.
///
/// # Examples
///
/// ```
/// use lens_num::linalg::Matrix;
///
/// # fn main() -> Result<(), lens_num::NumError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::RaggedRows`] if the rows have differing lengths.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, NumError> {
        let ncols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            let r = r.as_ref();
            if r.len() != ncols {
                return Err(NumError::RaggedRows {
                    expected: ncols,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a closure over `(row, col)` indices.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] when the inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NumError> {
        if self.cols != rhs.rows {
            return Err(NumError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, NumError> {
        if v.len() != self.cols {
            return Err(NumError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), v)).collect())
    }

    /// Adds `value` to every diagonal element (in place), returning `self`.
    ///
    /// Used to apply jitter / noise variance to kernel Gram matrices.
    pub fn add_diagonal(mut self, value: f64) -> Matrix {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
        self
    }

    /// Computes the Cholesky factorization `A = L Lᵀ` of a symmetric
    /// positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotPositiveDefinite`] if a pivot is not strictly
    /// positive, and [`NumError::DimensionMismatch`] if the matrix is not
    /// square. Only the lower triangle of `self` is read.
    pub fn cholesky(&self) -> Result<Cholesky, NumError> {
        if self.rows != self.cols {
            return Err(NumError::DimensionMismatch {
                op: "cholesky",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NumError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] * s)
    }
}

/// The lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix, together with the solve routines GP regression needs.
///
/// # Examples
///
/// ```
/// use lens_num::linalg::Matrix;
///
/// # fn main() -> Result<(), lens_num::NumError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let chol = a.cholesky()?;
/// // log|A| = 2 * sum(log diag(L)); |A| = 3 here.
/// assert!((chol.log_det() - 3f64.ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

#[allow(clippy::needless_range_loop)]
impl Cholesky {
    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// (Indexed loops are intentional: triangular solves read `L` by
    /// (row, col) and the textbook form is clearer than iterator chains.)
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factor dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch in solve_lower");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` by backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the factor dimension.
    pub fn solve_upper_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length mismatch in solve_upper_transpose");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper_transpose(&self.solve_lower(b))
    }

    /// Log-determinant of the factored matrix, `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_matmul_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ragged_rows_error() {
        let r = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert_eq!(
            r.unwrap_err(),
            NumError::RaggedRows {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let l = a.cholesky().unwrap();
        let reconstructed = l.factor().matmul(&l.factor().transpose()).unwrap();
        assert!((&reconstructed - &a).frobenius_norm() < 1e-9);
        // Known factor from the classic example.
        assert_eq!(l.factor()[(0, 0)], 2.0);
        assert_eq!(l.factor()[(1, 0)], 6.0);
        assert_eq!(l.factor()[(2, 2)], 3.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(NumError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.cholesky(),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&[10.0, 8.0]);
        let back = a.matvec(&x).unwrap();
        assert!((back[0] - 10.0).abs() < 1e-12);
        assert!((back[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn log_det_matches_direct_computation() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]).unwrap();
        let chol = a.cholesky().unwrap();
        assert!((chol.log_det() - 16f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn add_diagonal_adds_jitter() {
        let a = Matrix::zeros(3, 3).add_diagonal(0.5);
        for i in 0..3 {
            assert_eq!(a[(i, i)], 0.5);
        }
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    proptest! {
        /// For random SPD matrices A = BᵀB + εI, Cholesky must succeed and
        /// solving must invert the product.
        #[test]
        fn prop_cholesky_solves_spd(seed_rows in proptest::collection::vec(
            proptest::collection::vec(-3.0f64..3.0, 4), 4..=8)) {
            let b = Matrix::from_rows(&seed_rows).unwrap();
            let a = b.transpose().matmul(&b).unwrap().add_diagonal(1e-3);
            // a is 4x4 SPD.
            let chol = a.cholesky().unwrap();
            let rhs: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
            let x = chol.solve(&rhs);
            let back = a.matvec(&x).unwrap();
            for (bi, ri) in back.iter().zip(&rhs) {
                prop_assert!((bi - ri).abs() < 1e-6, "residual too large: {} vs {}", bi, ri);
            }
        }

        /// (AB)ᵀ = BᵀAᵀ for conforming random matrices.
        #[test]
        fn prop_transpose_of_product(
            a_rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 2..=5),
            b_cols in 1usize..4,
        ) {
            let a = Matrix::from_rows(&a_rows).unwrap();
            let b = Matrix::from_fn(3, b_cols, |i, j| (i * 7 + j * 3) as f64 * 0.25 - 1.0);
            let left = a.matmul(&b).unwrap().transpose();
            let right = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!((&left - &right).frobenius_norm() < 1e-9);
        }

        /// matvec agrees with matmul against a column matrix.
        #[test]
        fn prop_matvec_matches_matmul(
            rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 1..=5),
            v in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            let a = Matrix::from_rows(&rows).unwrap();
            let col = Matrix::from_fn(3, 1, |i, _| v[i]);
            let by_matmul = a.matmul(&col).unwrap();
            let by_matvec = a.matvec(&v).unwrap();
            for i in 0..a.rows() {
                prop_assert!((by_matmul[(i, 0)] - by_matvec[i]).abs() < 1e-9);
            }
        }
    }
}
