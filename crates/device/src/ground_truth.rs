//! The analytic ground-truth performance model (simulated testbed).
//!
//! A roofline-style model: each layer's latency is the maximum of its
//! compute time (`2·MACs / throughput`) and its memory time (bytes moved at
//! an effective bandwidth), plus a fixed launch overhead. Convolutions on
//! the TX2 are compute-bound; large dense layers are memory-bound on their
//! weight streaming — which is exactly why AlexNet's three FC layers, with
//! 94 % of the weights, take about half the total latency (Fig 1).
//!
//! Power is a per-class constant from the [`DeviceProfile`], emulating the
//! rail-level power states the INA3221 sensor reports.

use crate::features::LayerClass;
use crate::profile::DeviceProfile;
use crate::LayerPerformanceModel;
use lens_nn::units::{Millis, Milliwatts};
use lens_nn::{LayerAnalysis, LayerKind};

/// The analytic model, parameterized by a [`DeviceProfile`].
///
/// [`DeviceProfile`] implements [`LayerPerformanceModel`] by delegating to
/// this type, so most callers can pass the profile directly.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthModel {
    profile: DeviceProfile,
}

impl GroundTruthModel {
    /// Wraps a device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        GroundTruthModel { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Compute time in ms: `2·MACs / (GFLOP/s)`.
    fn compute_ms(&self, macs: u64, gflops: f64) -> f64 {
        2.0 * macs as f64 / (gflops * 1e6)
    }

    /// Memory time in ms: `bytes / (GB/s)`.
    fn memory_ms(&self, bytes: f64, gbps: f64) -> f64 {
        bytes / (gbps * 1e6)
    }
}

impl LayerPerformanceModel for GroundTruthModel {
    fn layer_latency(&self, layer: &LayerAnalysis) -> Millis {
        let p = &self.profile;
        let ms = match &layer.kind {
            LayerKind::Conv2d { .. } => {
                let compute = self.compute_ms(layer.macs, p.conv_gflops());
                // Activation traffic: inputs + outputs at f32, weights once.
                let bytes = 4.0
                    * (layer.input_shape.num_elements()
                        + layer.output_shape.num_elements()
                        + layer.params) as f64;
                let memory = self.memory_ms(bytes, p.activation_gbps());
                compute.max(memory) + p.layer_overhead_ms()
            }
            LayerKind::MaxPool2d { .. } | LayerKind::AvgPool2d { .. } => {
                let bytes = 4.0
                    * (layer.input_shape.num_elements() + layer.output_shape.num_elements()) as f64;
                self.memory_ms(bytes, p.activation_gbps()) + p.layer_overhead_ms()
            }
            LayerKind::Dense { .. } => {
                let compute = self.compute_ms(layer.macs, p.conv_gflops());
                // Dense layers stream their weight matrix once per inference
                // (GEMV): weights dominate, activations are negligible but
                // included.
                let bytes = 4.0
                    * (layer.params
                        + layer.input_shape.num_elements()
                        + layer.output_shape.num_elements()) as f64;
                let memory = self.memory_ms(bytes, p.dense_gbps());
                compute.max(memory) + p.layer_overhead_ms()
            }
            LayerKind::Flatten | LayerKind::Dropout { .. } => 0.0,
        };
        Millis::new(ms)
    }

    fn layer_power(&self, layer: &LayerAnalysis) -> Milliwatts {
        let p = &self.profile;
        match LayerClass::of(&layer.kind) {
            LayerClass::Conv => p.conv_power(),
            LayerClass::Dense => p.dense_power(),
            LayerClass::Pool => p.pool_power(),
            LayerClass::Free => Milliwatts::ZERO,
        }
    }
}

impl LayerPerformanceModel for DeviceProfile {
    fn layer_latency(&self, layer: &LayerAnalysis) -> Millis {
        GroundTruthModel::new(self.clone()).layer_latency(layer)
    }

    fn layer_power(&self, layer: &LayerAnalysis) -> Milliwatts {
        GroundTruthModel::new(self.clone()).layer_power(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_network;
    use lens_nn::zoo;

    /// The central Fig 1 claim: on the TX2 GPU, AlexNet's three FC layers
    /// take roughly half the total execution time.
    #[test]
    fn fig1_fc_layers_about_half_of_alexnet_latency() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &gpu);
        let share = perf.latency_share(|n| n.starts_with("fc"));
        assert!(
            (0.40..0.60).contains(&share),
            "FC latency share {share:.3} should be ~0.5"
        );
    }

    /// Calibration anchor: AlexNet totals on both TX2 configurations land in
    /// the windows derived from Table I (see DESIGN.md substitution #1).
    #[test]
    fn alexnet_calibration_windows() {
        let a = zoo::alexnet().analyze().unwrap();

        let gpu = profile_network(&a, &DeviceProfile::jetson_tx2_gpu());
        let gpu_total = gpu.total_latency().get();
        assert!(
            (40.0..55.0).contains(&gpu_total),
            "GPU AlexNet total {gpu_total} ms"
        );
        let gpu_energy = gpu.total_energy().get();
        assert!(
            (227.0..277.0).contains(&gpu_energy),
            "GPU AlexNet energy {gpu_energy} mJ must sit in the Table I window"
        );

        let cpu = profile_network(&a, &DeviceProfile::jetson_tx2_cpu());
        let cpu_total = cpu.total_latency().get();
        assert!(
            (200.0..260.0).contains(&cpu_total),
            "CPU AlexNet total {cpu_total} ms"
        );
        // Conv-part energy (through pool5) must exceed 555 mJ so All-Cloud
        // wins at 7.5 Mbps; FC-part energy must exceed 672 mJ so Pool5 beats
        // All-Edge at 0.7 Mbps.
        let pool5 = a.layer("pool5").unwrap().index;
        let conv_energy = cpu.energy_through(pool5).get();
        let fc_energy = cpu.total_energy().get() - conv_energy;
        assert!(conv_energy > 555.0, "CPU conv-part energy {conv_energy} mJ");
        assert!(fc_energy > 672.0, "CPU fc-part energy {fc_energy} mJ");
    }

    #[test]
    fn conv_layers_are_compute_bound_dense_memory_bound_on_gpu() {
        let gpu = GroundTruthModel::new(DeviceProfile::jetson_tx2_gpu());
        let a = zoo::alexnet().analyze().unwrap();
        let conv1 = a.layer("conv1").unwrap();
        // conv1: 105.4M MACs at 60 GFLOP/s ≈ 3.51 ms + overhead.
        let t = gpu.layer_latency(conv1).get();
        assert!((3.3..4.0).contains(&t), "conv1 latency {t}");
        // fc6: 151 MB of weights at 11 GB/s ≈ 13.7 ms.
        let fc6 = a.layer("fc6").unwrap();
        let t = gpu.layer_latency(fc6).get();
        assert!((13.0..15.0).contains(&t), "fc6 latency {t}");
    }

    #[test]
    fn free_layers_cost_nothing() {
        let gpu = GroundTruthModel::new(DeviceProfile::jetson_tx2_gpu());
        let a = zoo::alexnet().analyze().unwrap();
        let flat = a.layer("flatten").unwrap();
        assert_eq!(gpu.layer_latency(flat), Millis::ZERO);
        assert_eq!(gpu.layer_power(flat), Milliwatts::ZERO);
    }

    #[test]
    fn cpu_slower_than_gpu_per_layer() {
        let gpu = GroundTruthModel::new(DeviceProfile::jetson_tx2_gpu());
        let cpu = GroundTruthModel::new(DeviceProfile::jetson_tx2_cpu());
        let a = zoo::alexnet().analyze().unwrap();
        for l in a.layers() {
            if l.macs > 0 {
                assert!(
                    cpu.layer_latency(l) > gpu.layer_latency(l),
                    "layer {}",
                    l.name
                );
            }
        }
    }
}
