//! The synthetic measurement campaign.
//!
//! §IV.C: "For each layer's type, different combinations of both layer
//! parameters and input/output feature map sizes are evaluated and used to
//! construct datasets for training the prediction models." This module
//! builds exactly those datasets: a grid of layer configurations per class,
//! each "measured" by evaluating the analytic ground truth and applying
//! seeded log-normal noise (profiling jitter).

use crate::features::{layer_features, LayerClass};
use crate::ground_truth::GroundTruthModel;
use crate::profile::DeviceProfile;
use crate::LayerPerformanceModel;
use lens_nn::{Layer, LayerAnalysis, LayerKind, TensorShape};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One "measured" layer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Layer class the sample belongs to.
    pub class: LayerClass,
    /// Feature vector (class-specific layout).
    pub features: Vec<f64>,
    /// Measured latency in ms (noisy).
    pub latency_ms: f64,
    /// Measured power in mW (noisy).
    pub power_mw: f64,
    /// Noise-free latency, for validation reporting.
    pub true_latency_ms: f64,
    /// Noise-free power, for validation reporting.
    pub true_power_mw: f64,
}

/// A full measurement campaign over one device profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementCampaign {
    profile: DeviceProfile,
    noise_sigma: f64,
    measurements: Vec<Measurement>,
}

impl MeasurementCampaign {
    /// Runs the default grid with the given measurement-noise level
    /// (log-std of the multiplicative noise; 0.05 ≈ ±5 %).
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma` is negative.
    pub fn run(profile: &DeviceProfile, noise_sigma: f64, seed: u64) -> Self {
        assert!(noise_sigma >= 0.0, "noise_sigma must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = GroundTruthModel::new(profile.clone());
        let mut measurements = Vec::new();
        for ctx in Self::grid() {
            let true_latency = truth.layer_latency(&ctx).get();
            let true_power = truth.layer_power(&ctx).get();
            if true_latency == 0.0 {
                continue;
            }
            measurements.push(Measurement {
                class: LayerClass::of(&ctx.kind),
                features: layer_features(&ctx),
                latency_ms: true_latency * dist::multiplicative_noise(&mut rng, noise_sigma),
                power_mw: true_power * dist::multiplicative_noise(&mut rng, noise_sigma),
                true_latency_ms: true_latency,
                true_power_mw: true_power,
            });
        }
        MeasurementCampaign {
            profile: profile.clone(),
            noise_sigma,
            measurements,
        }
    }

    /// The profile that was "measured".
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The configured noise level.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// All measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Measurements of one class.
    pub fn of_class(&self, class: LayerClass) -> Vec<&Measurement> {
        self.measurements
            .iter()
            .filter(|m| m.class == class)
            .collect()
    }

    /// Builds a synthetic `LayerAnalysis` for a standalone layer on a given
    /// input — the "bench harness" equivalent of profiling one layer in
    /// isolation.
    pub(crate) fn analyze_single(layer: &Layer, input: TensorShape) -> Option<LayerAnalysis> {
        let output = layer.output_shape(&input).ok()?;
        Some(LayerAnalysis {
            index: 0,
            name: layer.name().to_string(),
            kind: layer.kind().clone(),
            input_shape: input,
            output_shape: output,
            output_bytes: output.size_bytes(lens_nn::DType::F32),
            macs: layer.macs(&input),
            params: layer.params(&input),
        })
    }

    /// The measurement grid: layer parameter combinations spanning (and
    /// exceeding) the Fig 4 search space and AlexNet.
    fn grid() -> Vec<LayerAnalysis> {
        let mut out = Vec::new();
        // Convolutions.
        for &spatial in &[7u32, 13, 14, 28, 56, 112, 224] {
            for &in_ch in &[3u32, 24, 64, 128, 256, 384, 512] {
                for &out_ch in &[24u32, 64, 128, 256, 384, 512] {
                    for &kernel in &[3u32, 5, 7, 11] {
                        if kernel > spatial {
                            continue;
                        }
                        let stride = if kernel == 11 { 4 } else { 1 };
                        for &groups in &[1u32, 2] {
                            if in_ch % groups != 0 || out_ch % groups != 0 {
                                continue;
                            }
                            let layer = Layer::new(
                                "bench-conv",
                                LayerKind::Conv2d {
                                    out_channels: out_ch,
                                    kernel,
                                    stride,
                                    padding: kernel / 2,
                                    groups,
                                    activation: lens_nn::Activation::Relu,
                                    batch_norm: true,
                                    local_response_norm: false,
                                },
                            );
                            if let Some(ctx) = Self::analyze_single(
                                &layer,
                                TensorShape::new(in_ch, spatial, spatial),
                            ) {
                                out.push(ctx);
                            }
                        }
                    }
                }
            }
        }
        // Pooling.
        for &spatial in &[4u32, 8, 14, 28, 56, 112, 224] {
            for &ch in &[24u32, 64, 128, 256, 512] {
                for &(kernel, stride) in &[(2u32, 2u32), (3, 2)] {
                    if kernel > spatial {
                        continue;
                    }
                    let layer = Layer::new("bench-pool", LayerKind::MaxPool2d { kernel, stride });
                    if let Some(ctx) =
                        Self::analyze_single(&layer, TensorShape::new(ch, spatial, spatial))
                    {
                        out.push(ctx);
                    }
                }
            }
        }
        // Dense.
        for &in_f in &[256u32, 512, 1024, 2048, 4096, 8192, 9216, 12544, 25088] {
            for &out_f in &[10u32, 256, 512, 1024, 2048, 4096, 8192] {
                let layer = Layer::dense("bench-dense", out_f);
                if let Some(ctx) = Self::analyze_single(&layer, TensorShape::flat(in_f)) {
                    out.push(ctx);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_all_modeled_classes() {
        let campaign = MeasurementCampaign::run(&DeviceProfile::jetson_tx2_gpu(), 0.05, 1);
        for class in LayerClass::modeled() {
            let n = campaign.of_class(class).len();
            assert!(n >= 50, "class {class} has only {n} samples");
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let p = DeviceProfile::jetson_tx2_gpu();
        let a = MeasurementCampaign::run(&p, 0.05, 7);
        let b = MeasurementCampaign::run(&p, 0.05, 7);
        assert_eq!(a, b);
        let c = MeasurementCampaign::run(&p, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_noise_measures_truth_exactly() {
        let campaign = MeasurementCampaign::run(&DeviceProfile::jetson_tx2_cpu(), 0.0, 1);
        for m in campaign.measurements() {
            assert!((m.latency_ms - m.true_latency_ms).abs() < 1e-12);
            assert!((m.power_mw - m.true_power_mw).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_perturbs_but_stays_positive() {
        let campaign = MeasurementCampaign::run(&DeviceProfile::jetson_tx2_gpu(), 0.1, 2);
        let mut any_different = false;
        for m in campaign.measurements() {
            assert!(m.latency_ms > 0.0);
            assert!(m.power_mw > 0.0);
            if (m.latency_ms - m.true_latency_ms).abs() > 1e-9 {
                any_different = true;
            }
        }
        assert!(any_different);
    }

    #[test]
    fn features_are_present_for_every_measurement() {
        let campaign = MeasurementCampaign::run(&DeviceProfile::jetson_tx2_gpu(), 0.05, 3);
        for m in campaign.measurements() {
            assert_eq!(m.features.len(), m.class.feature_width());
        }
    }
}
