//! Device profiles: the calibrated constants of the simulated testbed.
//!
//! A [`DeviceProfile`] parameterizes the analytic ground-truth model with
//! six numbers per compute class (effective throughputs, per-layer launch
//! overhead, and per-class power draws). The two Jetson TX2 profiles are
//! *calibrated*, not measured: their values are chosen so that the AlexNet
//! motivational analysis of §II reproduces — FC layers ≈ 50 % of latency
//! (Fig 1), every crossover of Fig 2, and all twelve deployment-preference
//! cells of Table I. The calibration is enforced by tests in this crate and
//! in `tests/calibration.rs`.

use lens_nn::units::Milliwatts;
use std::fmt;

/// Calibrated performance/power constants for one compute configuration of
/// an edge device.
///
/// # Examples
///
/// ```
/// use lens_device::DeviceProfile;
///
/// let gpu = DeviceProfile::jetson_tx2_gpu();
/// let cpu = DeviceProfile::jetson_tx2_cpu();
/// assert!(gpu.conv_gflops() > cpu.conv_gflops());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    conv_gflops: f64,
    dense_gbps: f64,
    activation_gbps: f64,
    layer_overhead_ms: f64,
    conv_power_mw: f64,
    dense_power_mw: f64,
    pool_power_mw: f64,
    idle_power_mw: f64,
}

impl DeviceProfile {
    /// Jetson TX2 running inference on its 256-core Pascal GPU.
    ///
    /// Effective (not peak) rates for an unoptimized Caffe-like runtime:
    /// ~60 GFLOP/s sustained on convolutions, ~11 GB/s effective weight
    /// streaming for GEMV-shaped dense layers.
    pub fn jetson_tx2_gpu() -> Self {
        DeviceProfile {
            name: "jetson-tx2-gpu".into(),
            conv_gflops: 60.0,
            dense_gbps: 11.0,
            activation_gbps: 20.0,
            layer_overhead_ms: 0.15,
            conv_power_mw: 5300.0,
            dense_power_mw: 5300.0,
            pool_power_mw: 3000.0,
            idle_power_mw: 1900.0,
        }
    }

    /// Jetson TX2 running inference on its ARM CPU complex.
    pub fn jetson_tx2_cpu() -> Self {
        DeviceProfile {
            name: "jetson-tx2-cpu".into(),
            conv_gflops: 13.0,
            dense_gbps: 1.9,
            activation_gbps: 4.0,
            layer_overhead_ms: 0.2,
            conv_power_mw: 5500.0,
            dense_power_mw: 6000.0,
            pool_power_mw: 2500.0,
            idle_power_mw: 1400.0,
        }
    }

    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if any throughput or power is non-positive/non-finite, or the
    /// overhead is negative.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        conv_gflops: f64,
        dense_gbps: f64,
        activation_gbps: f64,
        layer_overhead_ms: f64,
        conv_power_mw: f64,
        dense_power_mw: f64,
        pool_power_mw: f64,
        idle_power_mw: f64,
    ) -> Self {
        for (what, v) in [
            ("conv_gflops", conv_gflops),
            ("dense_gbps", dense_gbps),
            ("activation_gbps", activation_gbps),
            ("conv_power_mw", conv_power_mw),
            ("dense_power_mw", dense_power_mw),
            ("pool_power_mw", pool_power_mw),
        ] {
            assert!(v.is_finite() && v > 0.0, "{what} must be positive, got {v}");
        }
        assert!(
            layer_overhead_ms.is_finite() && layer_overhead_ms >= 0.0,
            "layer_overhead_ms must be non-negative"
        );
        assert!(
            idle_power_mw.is_finite() && idle_power_mw >= 0.0,
            "idle_power_mw must be non-negative"
        );
        DeviceProfile {
            name: name.into(),
            conv_gflops,
            dense_gbps,
            activation_gbps,
            layer_overhead_ms,
            conv_power_mw,
            dense_power_mw,
            pool_power_mw,
            idle_power_mw,
        }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sustained convolution throughput, GFLOP/s.
    pub fn conv_gflops(&self) -> f64 {
        self.conv_gflops
    }

    /// Effective weight-streaming bandwidth for dense layers, GB/s.
    pub fn dense_gbps(&self) -> f64 {
        self.dense_gbps
    }

    /// Effective activation-traffic bandwidth (pooling etc.), GB/s.
    pub fn activation_gbps(&self) -> f64 {
        self.activation_gbps
    }

    /// Fixed per-layer launch/dispatch overhead, ms.
    pub fn layer_overhead_ms(&self) -> f64 {
        self.layer_overhead_ms
    }

    /// Power draw while executing convolutions.
    pub fn conv_power(&self) -> Milliwatts {
        Milliwatts::new(self.conv_power_mw)
    }

    /// Power draw while executing dense layers.
    pub fn dense_power(&self) -> Milliwatts {
        Milliwatts::new(self.dense_power_mw)
    }

    /// Power draw while executing pooling / data-movement layers.
    pub fn pool_power(&self) -> Milliwatts {
        Milliwatts::new(self.pool_power_mw)
    }

    /// Idle power draw (used by ablations; the paper neglects idle energy
    /// during cloud execution and so does the default cost model).
    pub fn idle_power(&self) -> Milliwatts {
        Milliwatts::new(self.idle_power_mw)
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: conv {} GFLOP/s, dense {} GB/s, act {} GB/s",
            self.name, self.conv_gflops, self.dense_gbps, self.activation_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_faster_than_cpu_everywhere() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let cpu = DeviceProfile::jetson_tx2_cpu();
        assert!(gpu.conv_gflops() > cpu.conv_gflops());
        assert!(gpu.dense_gbps() > cpu.dense_gbps());
        assert!(gpu.activation_gbps() > cpu.activation_gbps());
    }

    #[test]
    fn custom_profile_validates() {
        let p = DeviceProfile::custom("x", 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0);
        assert_eq!(p.name(), "x");
    }

    #[test]
    #[should_panic(expected = "conv_gflops must be positive")]
    fn custom_profile_rejects_zero_throughput() {
        DeviceProfile::custom("x", 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(format!("{}", DeviceProfile::jetson_tx2_gpu()).contains("jetson-tx2-gpu"));
    }
}
