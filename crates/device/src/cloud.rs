//! Cloud-tier execution model.
//!
//! The paper (and our default cost model) neglects `L_cloud` and `E_cloud`
//! entirely: "as the cloud contains much more computation capabilities,
//! E_cloud and L_cloud can be neglected with respect to the other factors"
//! (§III.A). This module makes that assumption *checkable* instead of
//! implicit: a [`CloudProfile`] models a finite-throughput cloud, and the
//! `cloud_ablation` experiment quantifies how much the neglect distorts the
//! deployment decisions.

use crate::LayerPerformanceModel;
use lens_nn::units::Millis;
use lens_nn::NetworkAnalysis;
use std::fmt;

/// A finite cloud: effective convolution throughput and dense-layer
/// bandwidth, both far above the edge device's.
///
/// Only latency is modelled — cloud *energy* is never charged to the edge
/// (Eq. 2 cares about the edge's battery either way).
///
/// # Examples
///
/// ```
/// use lens_device::cloud::CloudProfile;
/// use lens_nn::zoo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cloud = CloudProfile::datacenter_gpu();
/// let analysis = zoo::alexnet().analyze()?;
/// let total = cloud.suffix_latency(&analysis, 0); // run everything remotely
/// assert!(total.get() < 5.0); // milliseconds, ~negligible vs comm
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CloudProfile {
    name: String,
    conv_gflops: f64,
    dense_gbps: f64,
}

impl CloudProfile {
    /// A datacenter-class accelerator: ~50× the TX2 GPU on convolutions,
    /// ~40× on memory-bound dense layers.
    pub fn datacenter_gpu() -> Self {
        CloudProfile {
            name: "datacenter-gpu".into(),
            conv_gflops: 3000.0,
            dense_gbps: 450.0,
        }
    }

    /// The paper's idealization: infinitely fast cloud (`L_cloud = 0`).
    pub fn infinite() -> Self {
        CloudProfile {
            name: "infinite-cloud".into(),
            conv_gflops: f64::INFINITY,
            dense_gbps: f64::INFINITY,
        }
    }

    /// A custom cloud capability.
    ///
    /// # Panics
    ///
    /// Panics if either throughput is not positive.
    pub fn custom(name: impl Into<String>, conv_gflops: f64, dense_gbps: f64) -> Self {
        assert!(conv_gflops > 0.0, "conv_gflops must be positive");
        assert!(dense_gbps > 0.0, "dense_gbps must be positive");
        CloudProfile {
            name: name.into(),
            conv_gflops,
            dense_gbps,
        }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cloud execution latency for layers `from_index..` of the network
    /// (the part shipped to the cloud when splitting after
    /// `from_index - 1`; `from_index = 0` is All-Cloud).
    pub fn suffix_latency(&self, analysis: &NetworkAnalysis, from_index: usize) -> Millis {
        if self.conv_gflops.is_infinite() {
            return Millis::ZERO;
        }
        let mut total = 0.0;
        for layer in &analysis.layers()[from_index.min(analysis.layers().len())..] {
            let compute = 2.0 * layer.macs as f64 / (self.conv_gflops * 1e6);
            let bytes = 4.0
                * (layer.params
                    + layer.input_shape.num_elements()
                    + layer.output_shape.num_elements()) as f64;
            let memory = bytes / (self.dense_gbps * 1e6);
            total += compute.max(memory);
        }
        Millis::new(total)
    }
}

impl fmt::Display for CloudProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GFLOP/s, {} GB/s)",
            self.name, self.conv_gflops, self.dense_gbps
        )
    }
}

/// Extension of [`LayerPerformanceModel`]-based profiling that also
/// computes cloud-side suffix latencies — consumed by the cloud-cost
/// ablation.
pub fn cloud_suffix_latencies(analysis: &NetworkAnalysis, cloud: &CloudProfile) -> Vec<Millis> {
    (0..=analysis.layers().len())
        .map(|i| cloud.suffix_latency(analysis, i))
        .collect()
}

/// A no-op impl so a `CloudProfile` can be queried through the same trait
/// in generic code paths that only care about latency. Power is zero: cloud
/// energy is not charged to the edge (Eq. 2).
impl LayerPerformanceModel for CloudProfile {
    fn layer_latency(&self, layer: &lens_nn::LayerAnalysis) -> Millis {
        if self.conv_gflops.is_infinite() {
            return Millis::ZERO;
        }
        let compute = 2.0 * layer.macs as f64 / (self.conv_gflops * 1e6);
        let bytes = 4.0
            * (layer.params + layer.input_shape.num_elements() + layer.output_shape.num_elements())
                as f64;
        Millis::new(compute.max(bytes / (self.dense_gbps * 1e6)))
    }

    fn layer_power(&self, _layer: &lens_nn::LayerAnalysis) -> lens_nn::units::Milliwatts {
        lens_nn::units::Milliwatts::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_nn::zoo;

    #[test]
    fn infinite_cloud_is_free() {
        let analysis = zoo::alexnet().analyze().unwrap();
        let cloud = CloudProfile::infinite();
        assert_eq!(cloud.suffix_latency(&analysis, 0), Millis::ZERO);
    }

    #[test]
    fn datacenter_cloud_is_much_faster_than_edge() {
        use crate::{profile_network, DeviceProfile};
        let analysis = zoo::alexnet().analyze().unwrap();
        let cloud = CloudProfile::datacenter_gpu();
        let edge = profile_network(&analysis, &DeviceProfile::jetson_tx2_gpu());
        let cloud_total = cloud.suffix_latency(&analysis, 0);
        assert!(cloud_total.get() * 20.0 < edge.total_latency().get());
    }

    #[test]
    fn suffix_latencies_decrease_monotonically() {
        let analysis = zoo::alexnet().analyze().unwrap();
        let cloud = CloudProfile::datacenter_gpu();
        let suffixes = cloud_suffix_latencies(&analysis, &cloud);
        assert_eq!(suffixes.len(), analysis.layers().len() + 1);
        for w in suffixes.windows(2) {
            assert!(
                w[0] >= w[1],
                "suffix latency must shrink as the split moves later"
            );
        }
        assert_eq!(suffixes.last().copied(), Some(Millis::ZERO));
    }

    #[test]
    #[should_panic(expected = "conv_gflops must be positive")]
    fn custom_rejects_zero() {
        CloudProfile::custom("bad", 0.0, 1.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(format!("{}", CloudProfile::datacenter_gpu()).contains("datacenter"));
    }
}
