//! The fitted per-layer-type performance predictors — Algorithm 1's
//! `L_Predict` and `P_Predict`.
//!
//! "Once trained, the prediction models can be directly called within LENS
//! to estimate the per-layer performance" (§IV.C). The LENS search never
//! sees the ground truth; it sees these ridge regressions, trained on the
//! noisy measurement campaign, and the gap between the two is quantified by
//! [`PerformancePredictor::report`].

use crate::features::{layer_features, LayerClass};
use crate::measure::MeasurementCampaign;
use crate::profile::DeviceProfile;
use crate::{DeviceError, LayerPerformanceModel};
use lens_nn::units::{Millis, Milliwatts};
use lens_nn::LayerAnalysis;
use lens_num::ridge::RidgeRegression;
use lens_num::stats;
use std::collections::BTreeMap;
use std::fmt;

/// Regression-quality metrics for one layer class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassReport {
    /// Number of training measurements.
    pub samples: usize,
    /// R² of latency predictions against the noise-free truth.
    pub latency_r2: f64,
    /// MAPE (%) of latency predictions against the noise-free truth.
    pub latency_mape: f64,
    /// R² of power predictions against the noise-free truth.
    pub power_r2: f64,
    /// MAPE (%) of power predictions against the noise-free truth.
    pub power_mape: f64,
}

/// Quality report over all modeled classes.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorReport {
    classes: Vec<(LayerClass, ClassReport)>,
}

impl PredictorReport {
    /// Per-class metrics.
    pub fn classes(&self) -> &[(LayerClass, ClassReport)] {
        &self.classes
    }

    /// The worst latency R² across classes — a single-number health check.
    pub fn worst_latency_r2(&self) -> f64 {
        self.classes
            .iter()
            .map(|(_, r)| r.latency_r2)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for PredictorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "class", "samples", "lat R2", "lat MAPE%", "pow R2", "pow MAPE%"
        )?;
        for (class, r) in &self.classes {
            writeln!(
                f,
                "{:<8} {:>8} {:>12.4} {:>12.2} {:>12.4} {:>12.2}",
                class.to_string(),
                r.samples,
                r.latency_r2,
                r.latency_mape,
                r.power_r2,
                r.power_mape
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
struct ClassModels {
    latency: RidgeRegression,
    power: RidgeRegression,
}

/// Per-layer-type ridge predictors for latency and power.
///
/// # Examples
///
/// ```
/// use lens_device::{DeviceProfile, PerformancePredictor, LayerPerformanceModel};
/// use lens_nn::zoo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gpu = DeviceProfile::jetson_tx2_gpu();
/// let predictor = PerformancePredictor::train(&gpu, 0.05, 42)?;
/// let a = zoo::alexnet().analyze()?;
/// let fc6 = a.layer("fc6").expect("alexnet has fc6");
/// let latency = predictor.layer_latency(fc6);
/// assert!(latency.get() > 5.0); // fc6 is a heavy, memory-bound layer
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerformancePredictor {
    profile_name: String,
    models: BTreeMap<LayerClass, ClassModels>,
    report: PredictorReport,
}

impl PerformancePredictor {
    /// Runs a measurement campaign on the profile and fits the per-class
    /// models. `noise_sigma` is the campaign's measurement noise; `seed`
    /// makes the whole pipeline reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if a class has no measurements or a fit
    /// fails.
    pub fn train(
        profile: &DeviceProfile,
        noise_sigma: f64,
        seed: u64,
    ) -> Result<Self, DeviceError> {
        let campaign = MeasurementCampaign::run(profile, noise_sigma, seed);
        Self::from_campaign(&campaign)
    }

    /// Fits the models from an existing campaign.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if a class has no measurements or a fit
    /// fails.
    pub fn from_campaign(campaign: &MeasurementCampaign) -> Result<Self, DeviceError> {
        let mut models = BTreeMap::new();
        let mut classes = Vec::new();
        for class in LayerClass::modeled() {
            let samples = campaign.of_class(class);
            if samples.is_empty() {
                return Err(DeviceError::NoMeasurements(class));
            }
            let xs: Vec<&[f64]> = samples.iter().map(|m| m.features.as_slice()).collect();
            let lat: Vec<f64> = samples.iter().map(|m| m.latency_ms).collect();
            let pow: Vec<f64> = samples.iter().map(|m| m.power_mw).collect();
            let latency = RidgeRegression::fit(&xs, &lat, 1e-4)?;
            let power = RidgeRegression::fit(&xs, &pow, 1e-4)?;

            // Validate against the noise-free truth.
            let lat_pred: Vec<f64> = xs.iter().map(|x| latency.predict(x)).collect();
            let pow_pred: Vec<f64> = xs.iter().map(|x| power.predict(x)).collect();
            let lat_true: Vec<f64> = samples.iter().map(|m| m.true_latency_ms).collect();
            let pow_true: Vec<f64> = samples.iter().map(|m| m.true_power_mw).collect();
            classes.push((
                class,
                ClassReport {
                    samples: samples.len(),
                    latency_r2: stats::r_squared(&lat_pred, &lat_true)?,
                    latency_mape: stats::mape(&lat_pred, &lat_true)?,
                    power_r2: stats::r_squared(&pow_pred, &pow_true)?,
                    power_mape: stats::mape(&pow_pred, &pow_true)?,
                },
            ));
            models.insert(class, ClassModels { latency, power });
        }
        Ok(PerformancePredictor {
            profile_name: campaign.profile().name().to_string(),
            models,
            report: PredictorReport { classes },
        })
    }

    /// Name of the profile the predictor was trained for.
    pub fn profile_name(&self) -> &str {
        &self.profile_name
    }

    /// The training-quality report (predictions vs noise-free truth).
    pub fn report(&self) -> &PredictorReport {
        &self.report
    }
}

impl LayerPerformanceModel for PerformancePredictor {
    fn layer_latency(&self, layer: &LayerAnalysis) -> Millis {
        let class = LayerClass::of(&layer.kind);
        if class == LayerClass::Free {
            return Millis::ZERO;
        }
        match self.models.get(&class) {
            // Ridge can mildly undershoot near the origin; clamp at zero.
            Some(m) => Millis::new(m.latency.predict(&layer_features(layer)).max(0.0)),
            None => Millis::ZERO,
        }
    }

    fn layer_power(&self, layer: &LayerAnalysis) -> Milliwatts {
        let class = LayerClass::of(&layer.kind);
        if class == LayerClass::Free {
            return Milliwatts::ZERO;
        }
        match self.models.get(&class) {
            Some(m) => Milliwatts::new(m.power.predict(&layer_features(layer)).max(0.0)),
            None => Milliwatts::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_network;
    use lens_nn::zoo;

    #[test]
    fn predictors_track_ground_truth_closely() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let pred = PerformancePredictor::train(&gpu, 0.05, 42).unwrap();
        let report = pred.report();
        assert!(
            report.worst_latency_r2() > 0.95,
            "latency R2 too low:\n{report}"
        );
        for (_, r) in report.classes() {
            assert!(r.power_mape < 10.0, "power MAPE {:.2}", r.power_mape);
        }
    }

    #[test]
    fn predicted_alexnet_total_close_to_truth() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let pred = PerformancePredictor::train(&gpu, 0.05, 42).unwrap();
        let a = zoo::alexnet().analyze().unwrap();
        let truth = profile_network(&a, &gpu);
        let predicted = profile_network(&a, &pred);
        let rel = (predicted.total_latency().get() - truth.total_latency().get()).abs()
            / truth.total_latency().get();
        assert!(rel < 0.20, "relative total-latency error {rel:.3}");
        let rel_e = (predicted.total_energy().get() - truth.total_energy().get()).abs()
            / truth.total_energy().get();
        assert!(rel_e < 0.20, "relative total-energy error {rel_e:.3}");
    }

    #[test]
    fn training_is_deterministic() {
        let cpu = DeviceProfile::jetson_tx2_cpu();
        let a = PerformancePredictor::train(&cpu, 0.05, 9).unwrap();
        let b = PerformancePredictor::train(&cpu, 0.05, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn free_layers_predict_zero() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let pred = PerformancePredictor::train(&gpu, 0.05, 1).unwrap();
        let a = zoo::alexnet().analyze().unwrap();
        let flat = a.layer("flatten").unwrap();
        assert_eq!(pred.layer_latency(flat), Millis::ZERO);
        assert_eq!(pred.layer_power(flat), Milliwatts::ZERO);
    }

    #[test]
    fn report_displays_all_classes() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let pred = PerformancePredictor::train(&gpu, 0.05, 1).unwrap();
        let text = format!("{}", pred.report());
        for class in ["conv", "pool", "dense"] {
            assert!(text.contains(class), "report missing {class}:\n{text}");
        }
    }
}
