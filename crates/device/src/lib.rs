//! Edge-device performance substrate: the paper's "Layer Performance
//! Prediction Models" (§IV.C), rebuilt without the physical testbed.
//!
//! The paper profiles every layer type with Caffe on an NVIDIA Jetson TX2
//! (latency from Caffe timing, power from the board's INA3221 sensing
//! circuit), then fits per-layer-type regression models whose features
//! follow Neurosurgeon. This crate reproduces that *methodology* on top of a
//! simulated testbed (DESIGN.md substitution #1):
//!
//! 1. [`profile`] — calibrated [`DeviceProfile`]s for the TX2's GPU and CPU.
//! 2. [`ground_truth`] — an analytic roofline-style model (compute-bound
//!    convolutions, memory-bound dense layers, per-layer overhead) standing
//!    in for the physical measurements. Its constants are calibrated so that
//!    AlexNet reproduces the paper's motivational facts (Fig 1 latency
//!    breakdown, all twelve Table I deployment preferences).
//! 3. [`measure`] — a synthetic measurement campaign: ground truth ×
//!    log-normal noise over a grid of layer configurations, emulating the
//!    profiling runs.
//! 4. [`predictor`] — per-layer-type ridge regressions trained on the
//!    campaign, the `L_Predict`/`P_Predict` of Algorithm 1. The search only
//!    ever sees these predictions, exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use lens_device::{profile_network, DeviceProfile};
//! use lens_nn::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gpu = DeviceProfile::jetson_tx2_gpu();
//! let perf = profile_network(&zoo::alexnet().analyze()?, &gpu);
//! // The paper's Fig 1: the three FC layers are ~50% of AlexNet's latency.
//! let fc_share = perf.latency_share(|name| name.starts_with("fc"));
//! assert!((0.35..0.65).contains(&fc_share));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cloud;
pub mod features;
pub mod ground_truth;
pub mod measure;
pub mod predictor;
pub mod profile;

pub use cloud::CloudProfile;
pub use features::{layer_features, LayerClass};
pub use ground_truth::GroundTruthModel;
pub use measure::{Measurement, MeasurementCampaign};
pub use predictor::{PerformancePredictor, PredictorReport};
pub use profile::DeviceProfile;

use lens_nn::units::{Millijoules, Millis, Milliwatts};
use lens_nn::{LayerAnalysis, NetworkAnalysis};
use std::error::Error;
use std::fmt;

/// Errors produced by the device substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The measurement campaign produced no samples for a layer class.
    NoMeasurements(LayerClass),
    /// Regression fitting failed.
    Fit(lens_num::NumError),
    /// A prediction was requested for a layer class with no trained model.
    UntrainedClass(LayerClass),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoMeasurements(c) => write!(f, "no measurements for layer class {c}"),
            DeviceError::Fit(e) => write!(f, "regression fit failed: {e}"),
            DeviceError::UntrainedClass(c) => write!(f, "no trained model for layer class {c}"),
        }
    }
}

impl Error for DeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeviceError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lens_num::NumError> for DeviceError {
    fn from(e: lens_num::NumError) -> Self {
        DeviceError::Fit(e)
    }
}

/// Anything that can estimate a layer's on-device execution latency and
/// power draw: the analytic [`GroundTruthModel`] (via [`DeviceProfile`]) or
/// the fitted [`PerformancePredictor`].
pub trait LayerPerformanceModel {
    /// Execution latency of the layer on the device.
    fn layer_latency(&self, layer: &LayerAnalysis) -> Millis;

    /// Average power draw while the layer executes.
    fn layer_power(&self, layer: &LayerAnalysis) -> Milliwatts;
}

/// Per-layer performance record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerformance {
    /// Layer index within the network.
    pub index: usize,
    /// Execution latency.
    pub latency: Millis,
    /// Average power draw during execution.
    pub power: Milliwatts,
    /// Energy = power × latency.
    pub energy: Millijoules,
}

/// Whole-network performance profile: per-layer latency/power/energy plus
/// the cumulative views Algorithm 1 accumulates (`sum(L_list[0:i])`).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPerformance {
    names: Vec<String>,
    layers: Vec<LayerPerformance>,
}

impl NetworkPerformance {
    /// The per-layer records in execution order.
    pub fn layers(&self) -> &[LayerPerformance] {
        &self.layers
    }

    /// Layer names, parallel to [`layers`](Self::layers).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total on-device latency (the All-Edge latency).
    pub fn total_latency(&self) -> Millis {
        self.layers.iter().map(|l| l.latency).sum()
    }

    /// Total on-device energy (the All-Edge energy).
    pub fn total_energy(&self) -> Millijoules {
        self.layers.iter().map(|l| l.energy).sum()
    }

    /// Latency of layers `0..=index` (inclusive prefix).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn latency_through(&self, index: usize) -> Millis {
        self.layers[..=index].iter().map(|l| l.latency).sum()
    }

    /// Energy of layers `0..=index` (inclusive prefix).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn energy_through(&self, index: usize) -> Millijoules {
        self.layers[..=index].iter().map(|l| l.energy).sum()
    }

    /// Fraction of total latency spent in layers whose name satisfies the
    /// predicate (used for the Fig 1 "FC layers ≈ 50%" check).
    pub fn latency_share<F: Fn(&str) -> bool>(&self, pred: F) -> f64 {
        let total = self.total_latency().get();
        if total == 0.0 {
            return 0.0;
        }
        let selected: f64 = self
            .names
            .iter()
            .zip(&self.layers)
            .filter(|(n, _)| pred(n))
            .map(|(_, l)| l.latency.get())
            .sum();
        selected / total
    }
}

/// Profiles every layer of an analyzed network under the given performance
/// model.
pub fn profile_network<M: LayerPerformanceModel + ?Sized>(
    analysis: &NetworkAnalysis,
    model: &M,
) -> NetworkPerformance {
    let mut names = Vec::with_capacity(analysis.layers().len());
    let mut layers = Vec::with_capacity(analysis.layers().len());
    for layer in analysis.layers() {
        let latency = model.layer_latency(layer);
        let power = model.layer_power(layer);
        names.push(layer.name.clone());
        layers.push(LayerPerformance {
            index: layer.index,
            latency,
            power,
            energy: power * latency,
        });
    }
    NetworkPerformance { names, layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_nn::zoo;

    #[test]
    fn network_performance_prefixes_are_consistent() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &gpu);
        let n = perf.layers().len();
        assert_eq!(n, a.layers().len());
        assert_eq!(perf.latency_through(n - 1), perf.total_latency());
        assert_eq!(perf.energy_through(n - 1), perf.total_energy());
        // Prefixes are monotone non-decreasing.
        let mut prev = Millis::ZERO;
        for i in 0..n {
            let cur = perf.latency_through(i);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn latency_share_partitions() {
        let gpu = DeviceProfile::jetson_tx2_gpu();
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &gpu);
        let fc = perf.latency_share(|n| n.starts_with("fc"));
        let rest = perf.latency_share(|n| !n.starts_with("fc"));
        assert!((fc + rest - 1.0).abs() < 1e-9);
    }
}
