//! Layer classification and feature engineering for the prediction models.
//!
//! "Each prediction model would have its input features constructed as in
//! \[3\]" (§IV.C) — Neurosurgeon builds one regression per layer *type* with
//! features derived from the layer's configuration. We use the same scheme:
//! a [`LayerClass`] per type and a fixed feature vector per class.

use lens_nn::{LayerAnalysis, LayerKind};
use std::fmt;

/// The layer classes that get their own prediction model.
///
/// `Free` layers (flatten, dropout at inference) cost nothing and are not
/// modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerClass {
    /// Convolutions (with fused activation/normalization).
    Conv,
    /// Max pooling.
    Pool,
    /// Fully connected layers.
    Dense,
    /// Zero-cost structural layers.
    Free,
}

impl LayerClass {
    /// Classifies a layer.
    pub fn of(kind: &LayerKind) -> LayerClass {
        match kind {
            LayerKind::Conv2d { .. } => LayerClass::Conv,
            LayerKind::MaxPool2d { .. } | LayerKind::AvgPool2d { .. } => LayerClass::Pool,
            LayerKind::Dense { .. } => LayerClass::Dense,
            LayerKind::Flatten | LayerKind::Dropout { .. } => LayerClass::Free,
        }
    }

    /// The classes that carry a prediction model.
    pub fn modeled() -> [LayerClass; 3] {
        [LayerClass::Conv, LayerClass::Pool, LayerClass::Dense]
    }

    /// Width of this class's feature vector.
    pub fn feature_width(self) -> usize {
        match self {
            LayerClass::Conv => 6,
            LayerClass::Pool => 4,
            LayerClass::Dense => 4,
            LayerClass::Free => 0,
        }
    }
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerClass::Conv => write!(f, "conv"),
            LayerClass::Pool => write!(f, "pool"),
            LayerClass::Dense => write!(f, "dense"),
            LayerClass::Free => write!(f, "free"),
        }
    }
}

/// Builds the Neurosurgeon-style feature vector for a layer.
///
/// As in Neurosurgeon, the features are chosen because they are the known
/// physical drivers of layer cost — arithmetic work (MACs) and data
/// movement (bytes of activations + weights) — plus shape descriptors:
///
/// * **Conv**: MACs, moved bytes, input elements, output elements, kernel²,
///   output channels.
/// * **Pool**: moved bytes, input elements, output elements, kernel².
/// * **Dense**: MACs, moved bytes, input features, output features.
/// * **Free**: empty (zero cost).
pub fn layer_features(layer: &LayerAnalysis) -> Vec<f64> {
    let moved_bytes = 4.0
        * (layer.params + layer.input_shape.num_elements() + layer.output_shape.num_elements())
            as f64;
    match &layer.kind {
        LayerKind::Conv2d { kernel, .. } => vec![
            layer.macs as f64,
            moved_bytes,
            layer.input_shape.num_elements() as f64,
            layer.output_shape.num_elements() as f64,
            (*kernel as f64) * (*kernel as f64),
            layer.output_shape.channels() as f64,
        ],
        LayerKind::MaxPool2d { kernel, .. } | LayerKind::AvgPool2d { kernel, .. } => vec![
            moved_bytes,
            layer.input_shape.num_elements() as f64,
            layer.output_shape.num_elements() as f64,
            (*kernel as f64) * (*kernel as f64),
        ],
        LayerKind::Dense { .. } => vec![
            layer.macs as f64,
            moved_bytes,
            layer.input_shape.num_elements() as f64,
            layer.output_shape.num_elements() as f64,
        ],
        LayerKind::Flatten | LayerKind::Dropout { .. } => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_nn::zoo;

    #[test]
    fn classes_cover_alexnet() {
        let a = zoo::alexnet().analyze().unwrap();
        let mut conv = 0;
        let mut pool = 0;
        let mut dense = 0;
        let mut free = 0;
        for l in a.layers() {
            match LayerClass::of(&l.kind) {
                LayerClass::Conv => conv += 1,
                LayerClass::Pool => pool += 1,
                LayerClass::Dense => dense += 1,
                LayerClass::Free => free += 1,
            }
        }
        assert_eq!((conv, pool, dense, free), (5, 3, 3, 1));
    }

    #[test]
    fn feature_widths_match_declared() {
        let a = zoo::alexnet().analyze().unwrap();
        for l in a.layers() {
            let class = LayerClass::of(&l.kind);
            assert_eq!(
                layer_features(l).len(),
                class.feature_width(),
                "layer {} class {class}",
                l.name
            );
        }
    }

    #[test]
    fn conv_features_reflect_macs() {
        let a = zoo::alexnet().analyze().unwrap();
        let conv1 = a.layer("conv1").unwrap();
        let f = layer_features(conv1);
        assert_eq!(f[0], conv1.macs as f64);
        assert_eq!(f[4], 121.0); // 11x11 kernel
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", LayerClass::Conv), "conv");
        assert_eq!(LayerClass::modeled().len(), 3);
    }
}
