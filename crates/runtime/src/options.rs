//! Deployment options and their affine `1/t_u` cost forms.
//!
//! [`DeploymentPlanner::enumerate`] is the shared engine behind Algorithm 1
//! (lines 9–14: identify viable partition points, accumulate on-device
//! costs, add communication) and the runtime analysis of §IV.E.

use crate::RuntimeError;
use lens_device::NetworkPerformance;
use lens_nn::units::{Mbps, Millijoules, Millis};
use lens_nn::NetworkAnalysis;
use lens_wireless::WirelessLink;
use std::fmt;

/// Which metric a cost/dominance computation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// End-to-end single-inference latency.
    Latency,
    /// Edge-device energy per inference.
    Energy,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Latency => write!(f, "latency"),
            Metric::Energy => write!(f, "energy"),
        }
    }
}

/// How the network is distributed between edge and cloud.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeploymentKind {
    /// Send the raw input to the cloud.
    AllCloud,
    /// Execute layers `0..=layer_index` on the edge, ship that layer's
    /// output feature map, finish in the cloud.
    Split {
        /// Index of the last edge-side layer.
        layer_index: usize,
        /// Name of that layer (e.g. `pool5`).
        layer_name: String,
    },
    /// Execute everything on the edge.
    AllEdge,
}

impl DeploymentKind {
    /// Whether this scheme sends any work to the cloud tier. All-Cloud and
    /// every split do; only All-Edge keeps the cloud out of the loop. This
    /// is the hook fleet-level simulators use to charge contention delay to
    /// exactly the options that occupy cloud capacity.
    pub fn uses_cloud(&self) -> bool {
        !matches!(self, DeploymentKind::AllEdge)
    }
}

impl fmt::Display for DeploymentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentKind::AllCloud => write!(f, "All-Cloud"),
            DeploymentKind::Split { layer_name, .. } => write!(f, "Split@{layer_name}"),
            DeploymentKind::AllEdge => write!(f, "All-Edge"),
        }
    }
}

/// An affine cost `f(t_u) = fixed + per_inverse / t_u`.
///
/// Latency in ms, energy in mJ; `t_u` in Mbps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineCost {
    /// The throughput-independent part.
    pub fixed: f64,
    /// The coefficient of `1/t_u`.
    pub per_inverse: f64,
}

impl AffineCost {
    /// Evaluates the cost at a throughput.
    pub fn at(&self, throughput: Mbps) -> f64 {
        self.fixed + self.per_inverse / throughput.get()
    }

    /// The throughput at which `self` and `other` cost the same, if one
    /// exists at a positive finite throughput. For `t_u` above the
    /// threshold, the option with the larger `per_inverse` is cheaper...
    /// or rather: the option that is worse at low `t_u` becomes better.
    pub fn crossover(&self, other: &AffineCost) -> Option<Mbps> {
        let db = self.per_inverse - other.per_inverse;
        let da = other.fixed - self.fixed;
        if db.abs() < 1e-15 || da.abs() < 1e-15 {
            return None;
        }
        let tu = db / da;
        if tu.is_finite() && tu > 0.0 {
            Some(Mbps::new(tu))
        } else {
            None
        }
    }
}

/// One deployment option with its latency and energy cost forms.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOption {
    kind: DeploymentKind,
    latency: AffineCost,
    energy: AffineCost,
}

impl DeploymentOption {
    /// The distribution scheme.
    pub fn kind(&self) -> &DeploymentKind {
        &self.kind
    }

    /// The affine cost for a metric.
    pub fn cost(&self, metric: Metric) -> AffineCost {
        match metric {
            Metric::Latency => self.latency,
            Metric::Energy => self.energy,
        }
    }

    /// Whether this option occupies cloud capacity (see
    /// [`DeploymentKind::uses_cloud`]).
    pub fn uses_cloud(&self) -> bool {
        self.kind.uses_cloud()
    }

    /// Latency at a given throughput.
    pub fn latency_at(&self, throughput: Mbps) -> Millis {
        Millis::new(self.latency.at(throughput))
    }

    /// Edge energy at a given throughput.
    pub fn energy_at(&self, throughput: Mbps) -> Millijoules {
        Millijoules::new(self.energy.at(throughput))
    }
}

impl fmt::Display for DeploymentOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

/// Enumerates the deployment options of a profiled network on a link.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlanner {
    link: WirelessLink,
    cloud: Option<lens_device::CloudProfile>,
}

impl DeploymentPlanner {
    /// Creates a planner for the given link (the throughput stored in the
    /// link is irrelevant here — costs are functions of `t_u`; only the
    /// technology's power model and RTT are used). The cloud tier is
    /// idealized as infinitely fast, as in the paper (`L_cloud = 0`).
    pub fn new(link: WirelessLink) -> Self {
        DeploymentPlanner { link, cloud: None }
    }

    /// A planner that charges a *finite* cloud execution latency to the
    /// cloud-side suffix of every option — the cloud-cost ablation of
    /// DESIGN.md §5. Cloud energy is still not charged to the edge (Eq. 2).
    pub fn with_cloud(link: WirelessLink, cloud: lens_device::CloudProfile) -> Self {
        DeploymentPlanner {
            link,
            cloud: Some(cloud),
        }
    }

    /// The link this planner models.
    pub fn link(&self) -> &WirelessLink {
        &self.link
    }

    /// The finite cloud profile, if the idealization is disabled.
    pub fn cloud(&self) -> Option<&lens_device::CloudProfile> {
        self.cloud.as_ref()
    }

    /// Enumerates All-Cloud, every viable split (layers whose output is
    /// smaller than the network input — §IV.B), and All-Edge.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InconsistentInputs`] if `perf` does not
    /// cover the same layers as `analysis`.
    pub fn enumerate(
        &self,
        analysis: &NetworkAnalysis,
        perf: &NetworkPerformance,
    ) -> Result<Vec<DeploymentOption>, RuntimeError> {
        if analysis.layers().len() != perf.layers().len() {
            return Err(RuntimeError::InconsistentInputs(format!(
                "analysis has {} layers, performance profile has {}",
                analysis.layers().len(),
                perf.layers().len()
            )));
        }
        let model = self.link.technology().power_model();
        let (alpha, beta) = (model.alpha_mw_per_mbps(), model.beta_mw());
        let rtt = self.link.round_trip().get();

        let mut options = Vec::new();
        let cloud_suffix = |from_index: usize| -> f64 {
            self.cloud
                .as_ref()
                .map(|c| c.suffix_latency(analysis, from_index).get())
                .unwrap_or(0.0)
        };

        // All-Cloud: ship the input image.
        let s_in = analysis.input_bytes().megabits();
        options.push(DeploymentOption {
            kind: DeploymentKind::AllCloud,
            latency: AffineCost {
                fixed: rtt + cloud_suffix(0),
                per_inverse: s_in * 1000.0,
            },
            // E_Tx = (α·t_u + β)·S/t_u [mW·s] = α·S + β·S/t_u [mJ].
            energy: AffineCost {
                fixed: alpha * s_in,
                per_inverse: beta * s_in,
            },
        });

        // Splits at every viable partition point (Identify, Alg 1 line 9).
        for &i in &analysis.viable_partition_indices() {
            let layer = &analysis.layers()[i];
            // Splitting after the final layer is just All-Edge plus an
            // unnecessary transmission; skip it.
            if i + 1 == analysis.layers().len() {
                continue;
            }
            let s = layer.output_bytes.megabits();
            options.push(DeploymentOption {
                kind: DeploymentKind::Split {
                    layer_index: i,
                    layer_name: layer.name.clone(),
                },
                latency: AffineCost {
                    fixed: perf.latency_through(i).get() + rtt + cloud_suffix(i + 1),
                    per_inverse: s * 1000.0,
                },
                energy: AffineCost {
                    fixed: perf.energy_through(i).get() + alpha * s,
                    per_inverse: beta * s,
                },
            });
        }

        // All-Edge: no communication at all.
        options.push(DeploymentOption {
            kind: DeploymentKind::AllEdge,
            latency: AffineCost {
                fixed: perf.total_latency().get(),
                per_inverse: 0.0,
            },
            energy: AffineCost {
                fixed: perf.total_energy().get(),
                per_inverse: 0.0,
            },
        });

        Ok(options)
    }

    /// The best option and its cost for a metric at a specific throughput —
    /// Algorithm 1's `Minimal` over the accumulated candidates.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from [`enumerate`](Self::enumerate), or
    /// [`RuntimeError::NoOptions`] if `options` is empty.
    pub fn best_at(
        options: &[DeploymentOption],
        metric: Metric,
        throughput: Mbps,
    ) -> Result<(&DeploymentOption, f64), RuntimeError> {
        let (index, cost) = Self::best_at_with_cloud_penalty(options, metric, throughput, 0.0)?;
        Ok((&options[index], cost))
    }

    /// The index of the cheapest option that does **not** use the cloud —
    /// the fallback-to-local accounting hook for admission control in a
    /// shared-cloud simulator: when a cloud tier sheds an offloaded
    /// request back to the device, the request is re-priced at this
    /// option's latency and energy. For every paper network this resolves
    /// to All-Edge; since cloud-free options carry no `1/t_u`
    /// communication term, the choice is the same at every throughput.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoOptions`] if no cloud-free option exists.
    pub fn local_fallback(
        options: &[DeploymentOption],
        metric: Metric,
        throughput: Mbps,
    ) -> Result<usize, RuntimeError> {
        options
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.uses_cloud())
            .min_by(|(_, a), (_, b)| {
                a.cost(metric)
                    .at(throughput)
                    .partial_cmp(&b.cost(metric).at(throughput))
                    .expect("finite costs")
            })
            .map(|(i, _)| i)
            .ok_or(RuntimeError::NoOptions)
    }

    /// The index of the best option for a metric at a throughput, charging
    /// `cloud_penalty` (in the metric's own unit) to every option that
    /// [uses the cloud](DeploymentOption::uses_cloud). This is the
    /// contention-aware selection a shared-cloud simulator needs: a queue
    /// delay shifts every offloaded option's cost by the same constant, so
    /// the design-time dominance map no longer applies and the argmin must
    /// be re-taken over the (few) penalized candidates.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoOptions`] if `options` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `cloud_penalty` is negative or non-finite.
    pub fn best_at_with_cloud_penalty(
        options: &[DeploymentOption],
        metric: Metric,
        throughput: Mbps,
        cloud_penalty: f64,
    ) -> Result<(usize, f64), RuntimeError> {
        assert!(
            cloud_penalty.is_finite() && cloud_penalty >= 0.0,
            "cloud_penalty must be finite and non-negative, got {cloud_penalty}"
        );
        options
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let penalty = if o.uses_cloud() { cloud_penalty } else { 0.0 };
                (i, o.cost(metric).at(throughput) + penalty)
            })
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .ok_or(RuntimeError::NoOptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::zoo;
    use lens_wireless::WirelessTechnology;
    use proptest::prelude::*;

    fn alexnet_options(tech: WirelessTechnology) -> Vec<DeploymentOption> {
        let a = zoo::alexnet().analyze().unwrap();
        let profile = match tech {
            WirelessTechnology::Wifi => DeviceProfile::jetson_tx2_gpu(),
            _ => DeviceProfile::jetson_tx2_cpu(),
        };
        let perf = profile_network(&a, &profile);
        let planner = DeploymentPlanner::new(WirelessLink::new(tech, Mbps::new(3.0)));
        planner.enumerate(&a, &perf).unwrap()
    }

    #[test]
    fn alexnet_option_set_matches_paper() {
        // §II.A: pool5 and fc6 are the viable interior partitions (plus
        // fc7; fc8 is the last layer and is excluded), All-Cloud, All-Edge.
        let options = alexnet_options(WirelessTechnology::Wifi);
        let labels: Vec<String> = options.iter().map(|o| o.to_string()).collect();
        assert!(labels.contains(&"All-Cloud".to_string()));
        assert!(labels.contains(&"All-Edge".to_string()));
        assert!(labels.contains(&"Split@pool5".to_string()));
        assert!(labels.contains(&"Split@fc6".to_string()));
        assert!(labels.contains(&"Split@fc7".to_string()));
        assert!(!labels.contains(&"Split@fc8".to_string()));
        // No conv layer is viable (feature maps bigger than the input).
        assert!(!labels.iter().any(|l| l.contains("conv")));
        // flatten has the same size as pool5 (< input) and is interior, so
        // it may appear; everything else is covered above.
        assert!(options.len() >= 5);
    }

    #[test]
    fn all_edge_is_throughput_independent() {
        let options = alexnet_options(WirelessTechnology::Wifi);
        let all_edge = options
            .iter()
            .find(|o| o.kind() == &DeploymentKind::AllEdge)
            .unwrap();
        let slow = all_edge.latency_at(Mbps::new(0.1));
        let fast = all_edge.latency_at(Mbps::new(100.0));
        assert_eq!(slow, fast);
        assert_eq!(all_edge.cost(Metric::Latency).per_inverse, 0.0);
    }

    #[test]
    fn all_cloud_latency_matches_link_formula() {
        let options = alexnet_options(WirelessTechnology::Wifi);
        let all_cloud = options
            .iter()
            .find(|o| o.kind() == &DeploymentKind::AllCloud)
            .unwrap();
        let tu = Mbps::new(3.0);
        let link = WirelessLink::new(WirelessTechnology::Wifi, tu);
        let expected = link.comm_latency(lens_nn::Bytes::new(150_528));
        assert!((all_cloud.latency_at(tu).get() - expected.get()).abs() < 1e-9);
        let expected_e = link.comm_energy(lens_nn::Bytes::new(150_528));
        assert!((all_cloud.energy_at(tu).get() - expected_e.get()).abs() < 1e-9);
    }

    #[test]
    fn split_cost_accumulates_prefix_plus_comm() {
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &DeviceProfile::jetson_tx2_gpu());
        let planner =
            DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)));
        let options = planner.enumerate(&a, &perf).unwrap();
        let pool5 = options
            .iter()
            .find(|o| o.to_string() == "Split@pool5")
            .unwrap();
        let tu = Mbps::new(7.5);
        let idx = a.layer("pool5").unwrap().index;
        let link = WirelessLink::new(WirelessTechnology::Wifi, tu);
        let expected =
            perf.latency_through(idx) + link.comm_latency(a.layer("pool5").unwrap().output_bytes);
        assert!((pool5.latency_at(tu).get() - expected.get()).abs() < 1e-9);
    }

    #[test]
    fn crossover_matches_manual_algebra() {
        let a = AffineCost {
            fixed: 10.0,
            per_inverse: 0.0,
        };
        let b = AffineCost {
            fixed: 4.0,
            per_inverse: 30.0,
        };
        // 10 = 4 + 30/tu -> tu = 5.
        let tu = a.crossover(&b).unwrap();
        assert!((tu.get() - 5.0).abs() < 1e-12);
        // Parallel lines and identical fixed parts have no crossover.
        assert!(a.crossover(&a).is_none());
    }

    #[test]
    fn best_at_is_pointwise_min() {
        let options = alexnet_options(WirelessTechnology::Lte);
        for tu in [0.5, 3.0, 7.5, 16.1, 30.0] {
            let tu = Mbps::new(tu);
            let (_, best) = DeploymentPlanner::best_at(&options, Metric::Energy, tu).unwrap();
            for o in &options {
                assert!(best <= o.cost(Metric::Energy).at(tu) + 1e-12);
            }
        }
    }

    #[test]
    fn empty_options_error() {
        assert!(matches!(
            DeploymentPlanner::best_at(&[], Metric::Latency, Mbps::new(1.0)),
            Err(RuntimeError::NoOptions)
        ));
        assert!(matches!(
            DeploymentPlanner::best_at_with_cloud_penalty(
                &[],
                Metric::Latency,
                Mbps::new(1.0),
                0.0
            ),
            Err(RuntimeError::NoOptions)
        ));
    }

    #[test]
    fn uses_cloud_only_excludes_all_edge() {
        let options = alexnet_options(WirelessTechnology::Lte);
        for o in &options {
            assert_eq!(o.uses_cloud(), o.kind() != &DeploymentKind::AllEdge, "{o}");
        }
    }

    #[test]
    fn zero_penalty_matches_plain_best_at() {
        let options = alexnet_options(WirelessTechnology::Lte);
        for tu in [0.5, 3.0, 7.5, 16.1, 30.0] {
            let tu = Mbps::new(tu);
            for metric in [Metric::Latency, Metric::Energy] {
                let (_, plain) = DeploymentPlanner::best_at(&options, metric, tu).unwrap();
                let (idx, penalized) =
                    DeploymentPlanner::best_at_with_cloud_penalty(&options, metric, tu, 0.0)
                        .unwrap();
                assert!((plain - penalized).abs() < 1e-12);
                assert!((options[idx].cost(metric).at(tu) - plain).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn local_fallback_is_the_cheapest_cloud_free_option() {
        let options = alexnet_options(WirelessTechnology::Lte);
        for metric in [Metric::Latency, Metric::Energy] {
            for tu in [0.5, 7.5, 50.0] {
                let idx =
                    DeploymentPlanner::local_fallback(&options, metric, Mbps::new(tu)).unwrap();
                assert_eq!(options[idx].kind(), &DeploymentKind::AllEdge);
                assert!(!options[idx].uses_cloud());
            }
        }
        // A cloud-only option set has nothing to fall back to.
        let cloud_only: Vec<DeploymentOption> =
            options.into_iter().filter(|o| o.uses_cloud()).collect();
        assert!(matches!(
            DeploymentPlanner::local_fallback(&cloud_only, Metric::Latency, Mbps::new(1.0)),
            Err(RuntimeError::NoOptions)
        ));
    }

    #[test]
    fn huge_penalty_forces_all_edge() {
        let options = alexnet_options(WirelessTechnology::Lte);
        let (idx, _) = DeploymentPlanner::best_at_with_cloud_penalty(
            &options,
            Metric::Latency,
            Mbps::new(50.0),
            1e9,
        )
        .unwrap();
        assert_eq!(options[idx].kind(), &DeploymentKind::AllEdge);
    }

    #[test]
    fn finite_cloud_raises_offloaded_latency_only() {
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &DeviceProfile::jetson_tx2_gpu());
        let link = WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0));
        let ideal = DeploymentPlanner::new(link).enumerate(&a, &perf).unwrap();
        let finite =
            DeploymentPlanner::with_cloud(link, lens_device::CloudProfile::datacenter_gpu())
                .enumerate(&a, &perf)
                .unwrap();
        let tu = Mbps::new(7.5);
        for (i_opt, f_opt) in ideal.iter().zip(&finite) {
            assert_eq!(i_opt.kind(), f_opt.kind());
            // Energy is untouched (cloud energy is not the edge's problem).
            assert_eq!(
                i_opt.cost(Metric::Energy).at(tu),
                f_opt.cost(Metric::Energy).at(tu)
            );
            match i_opt.kind() {
                DeploymentKind::AllEdge => assert_eq!(
                    i_opt.cost(Metric::Latency).at(tu),
                    f_opt.cost(Metric::Latency).at(tu)
                ),
                _ => assert!(
                    f_opt.cost(Metric::Latency).at(tu) > i_opt.cost(Metric::Latency).at(tu),
                    "offloaded option {} must pay cloud latency",
                    i_opt
                ),
            }
        }
        // The infinite profile reproduces the idealization exactly.
        let infinite = DeploymentPlanner::with_cloud(link, lens_device::CloudProfile::infinite())
            .enumerate(&a, &perf)
            .unwrap();
        for (i_opt, inf_opt) in ideal.iter().zip(&infinite) {
            assert_eq!(
                i_opt.cost(Metric::Latency).at(tu),
                inf_opt.cost(Metric::Latency).at(tu)
            );
        }
    }

    proptest! {
        /// Affine evaluation agrees with the explicit formula everywhere.
        #[test]
        fn prop_affine_eval(fixed in 0.0f64..100.0, per in 0.0f64..100.0, tu in 0.1f64..100.0) {
            let c = AffineCost { fixed, per_inverse: per };
            prop_assert!((c.at(Mbps::new(tu)) - (fixed + per / tu)).abs() < 1e-12);
        }

        /// At the crossover throughput the two costs agree.
        #[test]
        fn prop_crossover_equalizes(
            a_fixed in 0.0f64..50.0, a_per in 0.0f64..50.0,
            b_fixed in 0.0f64..50.0, b_per in 0.0f64..50.0,
        ) {
            let a = AffineCost { fixed: a_fixed, per_inverse: a_per };
            let b = AffineCost { fixed: b_fixed, per_inverse: b_per };
            if let Some(tu) = a.crossover(&b) {
                prop_assert!((a.at(tu) - b.at(tu)).abs() < 1e-6);
            }
        }
    }
}
