//! Trace-driven comparison of fixed vs dynamic deployment (Fig 8).
//!
//! §V.C replays measured LTE throughput traces and compares, per model,
//! the accumulated energy/latency of (a) each fixed deployment option and
//! (b) the dynamic policy that re-selects the dominant option from the
//! tracked throughput before every inference batch.

use crate::envelope::DominanceMap;
use crate::options::{DeploymentOption, Metric};
use crate::tracker::ThroughputTracker;
use crate::RuntimeError;
use lens_wireless::ThroughputTrace;
use std::fmt;

/// Cumulative cost series for one deployment policy over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSeries {
    /// Policy label (option name or "Dynamic").
    pub label: String,
    /// Cumulative cost after each trace sample.
    pub cumulative: Vec<f64>,
}

impl CumulativeSeries {
    /// Final accumulated cost.
    ///
    /// # Panics
    ///
    /// Never panics: the simulator always produces ≥ 1 sample.
    pub fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty series")
    }
}

/// Result of simulating one metric over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    metric: Metric,
    fixed: Vec<CumulativeSeries>,
    dynamic: CumulativeSeries,
    switches: usize,
}

impl SimulationReport {
    /// The metric simulated.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Cumulative series of every fixed option (same order as the
    /// simulator's option list).
    pub fn fixed(&self) -> &[CumulativeSeries] {
        &self.fixed
    }

    /// Cumulative series of the dynamic policy.
    pub fn dynamic(&self) -> &CumulativeSeries {
        &self.dynamic
    }

    /// How many times the dynamic policy changed option mid-trace.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// Percent improvement of the dynamic policy over the given fixed
    /// option: positive means dynamic is cheaper.
    ///
    /// # Panics
    ///
    /// Panics if `fixed_index` is out of range.
    pub fn gain_over(&self, fixed_index: usize) -> f64 {
        let fixed = self.fixed[fixed_index].total();
        if fixed == 0.0 {
            return 0.0;
        }
        100.0 * (fixed - self.dynamic.total()) / fixed
    }

    /// The best (cheapest) fixed option index.
    pub fn best_fixed(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.fixed.iter().enumerate() {
            if s.total() < self.fixed[best].total() {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation ({}):", self.metric)?;
        for s in &self.fixed {
            writeln!(f, "  fixed   {:<14} total {:.2}", s.label, s.total())?;
        }
        writeln!(
            f,
            "  dynamic ({} switches) total {:.2}",
            self.switches,
            self.dynamic.total()
        )
    }
}

/// Replays throughput traces against a set of deployment options.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSimulator {
    options: Vec<DeploymentOption>,
    /// Inferences performed per trace sample interval.
    inferences_per_sample: u32,
}

impl RuntimeSimulator {
    /// Creates a simulator over the given options, one inference per trace
    /// sample by default.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoOptions`] if `options` is empty.
    pub fn new(options: Vec<DeploymentOption>) -> Result<Self, RuntimeError> {
        if options.is_empty() {
            return Err(RuntimeError::NoOptions);
        }
        Ok(RuntimeSimulator {
            options,
            inferences_per_sample: 1,
        })
    }

    /// Sets how many inferences run during each trace-sample interval.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_inferences_per_sample(mut self, n: u32) -> Self {
        assert!(n > 0, "inferences_per_sample must be positive");
        self.inferences_per_sample = n;
        self
    }

    /// The options under comparison.
    pub fn options(&self) -> &[DeploymentOption] {
        &self.options
    }

    /// Simulates one metric over a trace. The dynamic policy observes each
    /// sample through `tracker` *before* the interval's inferences (the
    /// Fig 5 tracker-then-switch loop) and selects via the dominance map.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from dominance-map construction.
    pub fn run(
        &self,
        trace: &ThroughputTrace,
        metric: Metric,
        mut tracker: ThroughputTracker,
    ) -> Result<SimulationReport, RuntimeError> {
        let map = DominanceMap::build(&self.options, metric)?;
        let n = self.inferences_per_sample as f64;

        let mut fixed: Vec<CumulativeSeries> = self
            .options
            .iter()
            .map(|o| CumulativeSeries {
                label: o.to_string(),
                cumulative: Vec::with_capacity(trace.len()),
            })
            .collect();
        let mut dynamic = CumulativeSeries {
            label: "Dynamic".into(),
            cumulative: Vec::with_capacity(trace.len()),
        };

        let mut totals = vec![0.0; self.options.len()];
        let mut dyn_total = 0.0;
        let mut switches = 0usize;
        let mut last_choice: Option<usize> = None;

        for &tu in trace.samples() {
            for (i, option) in self.options.iter().enumerate() {
                totals[i] += option.cost(metric).at(tu) * n;
                fixed[i].cumulative.push(totals[i]);
            }
            tracker.observe(tu);
            let estimate = tracker.estimate().expect("observed at least one sample");
            let choice = map.best_at(estimate);
            if let Some(prev) = last_choice {
                if prev != choice {
                    switches += 1;
                }
            }
            last_choice = Some(choice);
            dyn_total += self.options[choice].cost(metric).at(tu) * n;
            dynamic.cumulative.push(dyn_total);
        }

        Ok(SimulationReport {
            metric,
            fixed,
            dynamic,
            switches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DeploymentPlanner;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::units::Mbps;
    use lens_nn::zoo;
    use lens_wireless::{TraceGenerator, WirelessLink, WirelessTechnology};

    fn simulator() -> RuntimeSimulator {
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &DeviceProfile::jetson_tx2_cpu());
        let planner =
            DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(3.0)));
        RuntimeSimulator::new(planner.enumerate(&a, &perf).unwrap()).unwrap()
    }

    #[test]
    fn dynamic_with_instant_tracker_beats_every_fixed_option() {
        // With a last-sample tracker the dynamic policy is the pointwise
        // argmin, so it can never lose to any fixed option.
        let sim = simulator();
        let trace = TraceGenerator::lte_like(Mbps::new(8.0)).generate(42);
        for metric in [Metric::Latency, Metric::Energy] {
            let report = sim
                .run(&trace, metric, ThroughputTracker::last_sample())
                .unwrap();
            for i in 0..report.fixed().len() {
                assert!(
                    report.gain_over(i) >= -1e-9,
                    "{metric}: dynamic lost to {}",
                    report.fixed()[i].label
                );
            }
        }
    }

    #[test]
    fn cumulative_series_are_monotone() {
        let sim = simulator();
        let trace = TraceGenerator::lte_like(Mbps::new(5.0)).generate(7);
        let report = sim
            .run(&trace, Metric::Energy, ThroughputTracker::last_sample())
            .unwrap();
        for series in report
            .fixed()
            .iter()
            .chain(std::iter::once(report.dynamic()))
        {
            for w in series.cumulative.windows(2) {
                assert!(w[1] >= w[0], "series {} not monotone", series.label);
            }
            assert_eq!(series.cumulative.len(), trace.len());
        }
    }

    #[test]
    fn volatile_trace_causes_switches() {
        let sim = simulator();
        // Very bursty trace around a threshold region.
        let trace = TraceGenerator::new(
            Mbps::new(10.0),
            1.0,
            0.1,
            60,
            lens_nn::units::Millis::new(60_000.0),
        )
        .generate(3);
        let report = sim
            .run(&trace, Metric::Latency, ThroughputTracker::last_sample())
            .unwrap();
        assert!(report.switches() > 0, "no switches on a volatile trace");
    }

    #[test]
    fn inferences_per_sample_scales_costs() {
        let sim1 = simulator();
        let sim10 = simulator().with_inferences_per_sample(10);
        let trace = TraceGenerator::lte_like(Mbps::new(8.0)).generate(1);
        let r1 = sim1
            .run(&trace, Metric::Energy, ThroughputTracker::last_sample())
            .unwrap();
        let r10 = sim10
            .run(&trace, Metric::Energy, ThroughputTracker::last_sample())
            .unwrap();
        assert!((r10.dynamic().total() - 10.0 * r1.dynamic().total()).abs() < 1e-6);
    }

    #[test]
    fn best_fixed_identifies_minimum() {
        let sim = simulator();
        let trace = TraceGenerator::lte_like(Mbps::new(8.0)).generate(5);
        let report = sim
            .run(&trace, Metric::Latency, ThroughputTracker::last_sample())
            .unwrap();
        let best = report.best_fixed();
        for (i, s) in report.fixed().iter().enumerate() {
            assert!(report.fixed()[best].total() <= s.total() + 1e-12, "{i}");
        }
    }

    #[test]
    fn display_summarizes_policies() {
        let sim = simulator();
        let trace = TraceGenerator::lte_like(Mbps::new(8.0)).generate(2);
        let report = sim
            .run(&trace, Metric::Energy, ThroughputTracker::last_sample())
            .unwrap();
        let s = format!("{report}");
        assert!(s.contains("dynamic") && s.contains("All-Edge"));
    }
}
