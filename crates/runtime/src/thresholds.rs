//! Pairwise `t_u` thresholds — the paper's §IV.E procedure, verbatim.
//!
//! "Each deployment option is compared in a pairwise manner to its
//! counterparts, and the intersection of `t_u` ranges over which it
//! dominates all other options is determined and associated with it."
//! [`pairwise_thresholds`] produces exactly those pairwise crossovers
//! (e.g. the paper's "model A favors the partitioned over All-Edge ...
//! whenever `t_u > 6.77 Mbps`"), and [`dominant_range`] intersects them per
//! option. The results provably agree with the lower-envelope construction
//! of [`DominanceMap`](crate::DominanceMap) — a property test in this
//! module checks it.

use crate::options::{DeploymentOption, Metric};
use lens_nn::units::Mbps;
use std::fmt;

/// A pairwise crossover: below `threshold`, `cheaper_below` wins; above it,
/// `cheaper_above` wins (indices into the option list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseThreshold {
    /// Option index that is cheaper for `t_u` below the threshold.
    pub cheaper_below: usize,
    /// Option index that is cheaper for `t_u` above the threshold.
    pub cheaper_above: usize,
    /// The crossover throughput.
    pub threshold: Mbps,
}

impl fmt::Display for PairwiseThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "option {} -> option {} at {}",
            self.cheaper_below, self.cheaper_above, self.threshold
        )
    }
}

/// All pairwise crossovers between deployment options for a metric, in
/// ascending threshold order.
///
/// Because every cost is `a + b/t_u` with `b ≥ 0`, each pair crosses at
/// most once, and the option with the *smaller* `b` (less data to ship)
/// wins above the threshold.
pub fn pairwise_thresholds(options: &[DeploymentOption], metric: Metric) -> Vec<PairwiseThreshold> {
    let mut out = Vec::new();
    for (i, a) in options.iter().enumerate() {
        for (j, b) in options.iter().enumerate().skip(i + 1) {
            let ca = a.cost(metric);
            let cb = b.cost(metric);
            if let Some(threshold) = ca.crossover(&cb) {
                // Above the threshold the 1/t_u term vanishes faster for
                // the smaller per_inverse coefficient.
                let (cheaper_below, cheaper_above) = if ca.per_inverse > cb.per_inverse {
                    (j, i)
                } else {
                    (i, j)
                };
                // Orientation check: which is actually cheaper above?
                let probe = Mbps::new(threshold.get() * 2.0);
                let (cheaper_below, cheaper_above) =
                    if options[cheaper_above].cost(metric).at(probe)
                        <= options[cheaper_below].cost(metric).at(probe)
                    {
                        (cheaper_below, cheaper_above)
                    } else {
                        (cheaper_above, cheaper_below)
                    };
                out.push(PairwiseThreshold {
                    cheaper_below,
                    cheaper_above,
                    threshold,
                });
            }
        }
    }
    out.sort_by(|x, y| {
        x.threshold
            .get()
            .partial_cmp(&y.threshold.get())
            .expect("finite thresholds")
    });
    out
}

/// The `t_u` interval over which `option_index` dominates *all* other
/// options (the paper's per-option "intersection of t_u ranges"), or `None`
/// if it is never simultaneously best. Bounds are `(lo, hi)` with
/// `hi = ∞` for the last interval and `lo = 0` for the first.
pub fn dominant_range(
    options: &[DeploymentOption],
    metric: Metric,
    option_index: usize,
) -> Option<(f64, f64)> {
    let mut lo: f64 = 0.0;
    let mut hi: f64 = f64::INFINITY;
    let own = options[option_index].cost(metric);
    for (j, other) in options.iter().enumerate() {
        if j == option_index {
            continue;
        }
        let oc = other.cost(metric);
        match own.crossover(&oc) {
            Some(threshold) => {
                // Which side of the crossover do we win on?
                let probe = Mbps::new(threshold.get() * 2.0);
                if own.at(probe) <= oc.at(probe) {
                    lo = lo.max(threshold.get());
                } else {
                    hi = hi.min(threshold.get());
                }
            }
            None => {
                // No crossover: one option dominates everywhere (or ties).
                let probe = Mbps::new(1.0);
                if own.at(probe) > oc.at(probe) {
                    return None;
                }
            }
        }
    }
    if lo < hi {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::DominanceMap;
    use crate::options::DeploymentPlanner;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::zoo;
    use lens_wireless::{WirelessLink, WirelessTechnology};
    use proptest::prelude::*;

    fn alexnet_options() -> Vec<DeploymentOption> {
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &DeviceProfile::jetson_tx2_cpu());
        DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(3.0)))
            .enumerate(&a, &perf)
            .unwrap()
    }

    #[test]
    fn thresholds_are_sorted_and_oriented() {
        let options = alexnet_options();
        for metric in [Metric::Latency, Metric::Energy] {
            let pairs = pairwise_thresholds(&options, metric);
            assert!(!pairs.is_empty());
            for w in pairs.windows(2) {
                assert!(w[0].threshold <= w[1].threshold);
            }
            for p in &pairs {
                // Just below the threshold, cheaper_below really is cheaper.
                let below = Mbps::new(p.threshold.get() * 0.99);
                let above = Mbps::new(p.threshold.get() * 1.01);
                let c_below = options[p.cheaper_below].cost(metric);
                let c_above = options[p.cheaper_above].cost(metric);
                assert!(c_below.at(below) <= c_above.at(below) + 1e-9, "{p}");
                assert!(c_above.at(above) <= c_below.at(above) + 1e-9, "{p}");
            }
        }
    }

    #[test]
    fn dominant_ranges_match_the_envelope() {
        let options = alexnet_options();
        for metric in [Metric::Latency, Metric::Energy] {
            let map = DominanceMap::build(&options, metric).unwrap();
            for segment in map.segments() {
                let range =
                    dominant_range(&options, metric, segment.option_index).unwrap_or_else(|| {
                        panic!(
                            "option {} has an envelope segment but no range",
                            segment.option_index
                        )
                    });
                // The envelope segment must sit inside the pairwise range.
                assert!(range.0 <= segment.from_mbps + 1e-9);
                assert!(range.1 >= segment.to_mbps - 1e-9 || segment.to_mbps.is_infinite());
            }
            // Options without envelope segments either never dominate or
            // exactly tie the envelope winner over their claimed range
            // (e.g. Split@pool5 and Split@flatten have identical costs —
            // flatten is free and ships the same bytes).
            let on_envelope: std::collections::BTreeSet<usize> =
                map.segments().iter().map(|s| s.option_index).collect();
            for i in 0..options.len() {
                if !on_envelope.contains(&i) {
                    if let Some((lo, hi)) = dominant_range(&options, metric, i) {
                        let probe = Mbps::new(if hi.is_infinite() {
                            lo + 1.0
                        } else {
                            (lo + hi) / 2.0
                        });
                        let winner = &options[map.best_at(probe)];
                        let diff =
                            options[i].cost(metric).at(probe) - winner.cost(metric).at(probe);
                        assert!(
                            diff.abs() < 1e-9,
                            "option {i} claims {lo}..{hi} but differs from the envelope winner by {diff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn model_a_style_statement_reconstructable() {
        // The paper's §V.C statement has the shape "partitioned beats
        // All-Edge for energy whenever t_u > X". Reconstruct such a
        // statement for AlexNet on CPU/LTE.
        let options = alexnet_options();
        let pairs = pairwise_thresholds(&options, Metric::Energy);
        let all_edge = options.len() - 1; // planner pushes All-Edge last
        let vs_edge: Vec<&PairwiseThreshold> = pairs
            .iter()
            .filter(|p| p.cheaper_below == all_edge || p.cheaper_above == all_edge)
            .collect();
        assert!(
            !vs_edge.is_empty(),
            "All-Edge must cross at least one offloaded option"
        );
        // All-Edge always wins at very low t_u: it must be cheaper_below.
        for p in vs_edge {
            assert_eq!(p.cheaper_below, all_edge, "{p}");
        }
    }

    proptest! {
        /// dominant_range agrees with brute-force sampling.
        #[test]
        fn prop_dominant_range_matches_sampling(tu in 0.05f64..100.0) {
            let options = alexnet_options();
            let metric = Metric::Energy;
            let tu_m = Mbps::new(tu);
            // Brute-force winner at tu:
            let mut winner = 0;
            for (i, o) in options.iter().enumerate() {
                if o.cost(metric).at(tu_m) < options[winner].cost(metric).at(tu_m) {
                    winner = i;
                }
            }
            let range = dominant_range(&options, metric, winner);
            prop_assert!(range.is_some(), "winner at {tu} has no dominant range");
            let (lo, hi) = range.unwrap();
            prop_assert!(lo - 1e-9 <= tu && tu <= hi + 1e-9,
                "tu {tu} outside winner's range {lo}..{hi}");
        }
    }
}
