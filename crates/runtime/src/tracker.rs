//! The online throughput tracker of Fig 5.
//!
//! "An online throughput tracker can be exploited on the edge device to
//! switch between different deployment options based on the `t_u` value in
//! real-time." The tracker smooths observed uplink samples with an EWMA
//! (α = 1 reduces to last-sample tracking).

use lens_nn::units::Mbps;

/// Exponentially weighted moving-average throughput estimator.
///
/// # Examples
///
/// ```
/// use lens_nn::units::Mbps;
/// use lens_runtime::ThroughputTracker;
///
/// let mut tracker = ThroughputTracker::new(0.5);
/// assert!(tracker.estimate().is_none());
/// tracker.observe(Mbps::new(10.0));
/// tracker.observe(Mbps::new(20.0));
/// let est = tracker.estimate().expect("has observations");
/// assert!((est.get() - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputTracker {
    alpha: f64,
    estimate: Option<f64>,
    observations: usize,
}

impl ThroughputTracker {
    /// Creates a tracker with smoothing factor `alpha ∈ (0, 1]`; 1 means
    /// "trust the latest sample completely".
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        ThroughputTracker {
            alpha,
            estimate: None,
            observations: 0,
        }
    }

    /// A last-sample tracker (α = 1).
    pub fn last_sample() -> Self {
        ThroughputTracker::new(1.0)
    }

    /// Feeds one measured uplink sample.
    pub fn observe(&mut self, sample: Mbps) {
        self.observations += 1;
        self.estimate = Some(match self.estimate {
            None => sample.get(),
            Some(prev) => self.alpha * sample.get() + (1.0 - self.alpha) * prev,
        });
    }

    /// The current throughput estimate, if any sample has been observed.
    pub fn estimate(&self) -> Option<Mbps> {
        self.estimate.map(Mbps::new)
    }

    /// Number of samples observed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Clears the tracker.
    pub fn reset(&mut self) {
        self.estimate = None;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_sample_mode_tracks_exactly() {
        let mut t = ThroughputTracker::last_sample();
        t.observe(Mbps::new(3.0));
        t.observe(Mbps::new(8.0));
        assert_eq!(t.estimate().unwrap().get(), 8.0);
        assert_eq!(t.observations(), 2);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut t = ThroughputTracker::new(0.3);
        for _ in 0..100 {
            t.observe(Mbps::new(5.0));
        }
        assert!((t.estimate().unwrap().get() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut t = ThroughputTracker::new(0.2);
        for _ in 0..10 {
            t.observe(Mbps::new(10.0));
        }
        t.observe(Mbps::new(100.0));
        let est = t.estimate().unwrap().get();
        assert!(est < 30.0, "estimate {est} jumped too hard");
        assert!(est > 10.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = ThroughputTracker::new(0.5);
        t.observe(Mbps::new(1.0));
        t.reset();
        assert!(t.estimate().is_none());
        assert_eq!(t.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn zero_alpha_panics() {
        ThroughputTracker::new(0.0);
    }

    #[test]
    fn step_change_decays_geometrically() {
        // After a step from 10 to 20 Mbps, the EWMA error must shrink by
        // exactly (1 - alpha) per observation: e_k = (1-alpha)^k * step.
        let alpha = 0.3;
        let mut t = ThroughputTracker::new(alpha);
        for _ in 0..50 {
            t.observe(Mbps::new(10.0));
        }
        let mut expected_error = 10.0; // the step size
        for _ in 0..20 {
            t.observe(Mbps::new(20.0));
            expected_error *= 1.0 - alpha;
            let err = 20.0 - t.estimate().unwrap().get();
            assert!(
                (err - expected_error).abs() < 1e-9,
                "error {err} vs expected {expected_error}"
            );
        }
        // After 20 steps the tracker has essentially converged.
        assert!((t.estimate().unwrap().get() - 20.0).abs() < 0.01);
    }

    #[test]
    fn last_sample_tracker_responds_to_step_instantly() {
        let mut t = ThroughputTracker::last_sample();
        for _ in 0..10 {
            t.observe(Mbps::new(2.0));
        }
        t.observe(Mbps::new(30.0));
        assert_eq!(t.estimate().unwrap().get(), 30.0);
    }

    #[test]
    fn smaller_alpha_lags_harder_on_a_step() {
        let step = |alpha: f64| {
            let mut t = ThroughputTracker::new(alpha);
            for _ in 0..10 {
                t.observe(Mbps::new(5.0));
            }
            t.observe(Mbps::new(50.0));
            t.estimate().unwrap().get()
        };
        assert!(step(0.1) < step(0.5));
        assert!(step(0.5) < step(1.0));
        assert_eq!(step(1.0), 50.0);
    }
}
