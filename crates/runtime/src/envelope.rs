//! Dominance maps: which deployment option wins on which `t_u` interval.
//!
//! §IV.E: "each deployment option is compared in a pairwise manner to its
//! counterparts, and the intersection of `t_u` ranges over which it
//! dominates all other options is determined". Because every cost is affine
//! in `x = 1/t_u`, that intersection structure is exactly the lower
//! envelope of a pencil of lines. The envelope is computed once at design
//! time; at runtime a throughput estimate maps to the dominant option with
//! a binary search over the precomputed thresholds — the paper's "O(1)"
//! switch.

use crate::options::{DeploymentOption, Metric};
use crate::RuntimeError;
use lens_nn::units::Mbps;
use std::fmt;

/// A maximal `t_u` interval on which one option is optimal.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Inclusive lower end of the throughput interval (0 = "down to no
    /// bandwidth").
    pub from_mbps: f64,
    /// Exclusive upper end (`f64::INFINITY` for the last segment).
    pub to_mbps: f64,
    /// Index into the planner's option list.
    pub option_index: usize,
}

/// The precomputed option-dominance structure for one metric.
///
/// # Examples
///
/// ```
/// use lens_device::{profile_network, DeviceProfile};
/// use lens_nn::{units::Mbps, zoo};
/// use lens_runtime::{DeploymentPlanner, DominanceMap, Metric};
/// use lens_wireless::{WirelessLink, WirelessTechnology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let analysis = zoo::alexnet().analyze()?;
/// let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_gpu());
/// let planner = DeploymentPlanner::new(
///     WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)));
/// let options = planner.enumerate(&analysis, &perf)?;
/// let map = DominanceMap::build(&options, Metric::Latency)?;
/// // Low throughput favours All-Edge for latency on the GPU.
/// let best = map.best_at(Mbps::new(0.7));
/// assert_eq!(options[best].to_string(), "All-Edge");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DominanceMap {
    metric: Metric,
    segments: Vec<Segment>,
}

impl DominanceMap {
    /// Builds the dominance map for a metric over `t_u ∈ (0, ∞)`.
    ///
    /// Complexity is `O(n² log n)` in the number of options (n is ≤ a dozen
    /// for realistic networks; robustness beats asymptotics here).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoOptions`] when `options` is empty.
    pub fn build(options: &[DeploymentOption], metric: Metric) -> Result<Self, RuntimeError> {
        if options.is_empty() {
            return Err(RuntimeError::NoOptions);
        }
        // Candidate breakpoints: all positive pairwise crossovers.
        let mut cuts: Vec<f64> = Vec::new();
        for (i, a) in options.iter().enumerate() {
            for b in options.iter().skip(i + 1) {
                if let Some(tu) = a.cost(metric).crossover(&b.cost(metric)) {
                    cuts.push(tu.get());
                }
            }
        }
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite crossovers"));
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Probe the open interval between consecutive cuts (and the two
        // unbounded ends) at its midpoint and record the argmin.
        let mut probes: Vec<(f64, f64, f64)> = Vec::new(); // (lo, hi, probe)
        let mut lo = 0.0;
        for &cut in &cuts {
            let probe = if lo == 0.0 {
                cut / 2.0
            } else {
                (lo + cut) / 2.0
            };
            probes.push((lo, cut, probe));
            lo = cut;
        }
        probes.push((lo, f64::INFINITY, if lo == 0.0 { 1.0 } else { lo * 2.0 }));

        let mut segments: Vec<Segment> = Vec::new();
        for (from, to, probe) in probes {
            let best = argmin_at(options, metric, probe);
            match segments.last_mut() {
                Some(last) if last.option_index == best => last.to_mbps = to,
                _ => segments.push(Segment {
                    from_mbps: from,
                    to_mbps: to,
                    option_index: best,
                }),
            }
        }
        Ok(DominanceMap { metric, segments })
    }

    /// The metric this map describes.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The dominance segments in ascending throughput order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The thresholds (segment boundaries), ascending, excluding 0 and ∞ —
    /// the values §IV.E computes by pairwise comparison.
    pub fn thresholds(&self) -> Vec<Mbps> {
        self.segments
            .iter()
            .skip(1)
            .map(|s| Mbps::new(s.from_mbps))
            .collect()
    }

    /// Index of the optimal option at a throughput (binary search over the
    /// precomputed segments — the O(1)-per-inference runtime switch).
    pub fn best_at(&self, throughput: Mbps) -> usize {
        let tu = throughput.get();
        let mut lo = 0usize;
        let mut hi = self.segments.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.segments[mid].from_mbps <= tu {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.segments[lo].option_index
    }
}

impl fmt::Display for DominanceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dominance map ({}):", self.metric)?;
        for s in &self.segments {
            if s.to_mbps.is_infinite() {
                writeln!(
                    f,
                    "  t_u > {:.3} Mbps -> option {}",
                    s.from_mbps, s.option_index
                )?;
            } else {
                writeln!(
                    f,
                    "  {:.3}..{:.3} Mbps -> option {}",
                    s.from_mbps, s.to_mbps, s.option_index
                )?;
            }
        }
        Ok(())
    }
}

fn argmin_at(options: &[DeploymentOption], metric: Metric, tu: f64) -> usize {
    let tu = Mbps::new(tu);
    let mut best = 0;
    let mut best_cost = options[0].cost(metric).at(tu);
    for (i, o) in options.iter().enumerate().skip(1) {
        let c = o.cost(metric).at(tu);
        if c < best_cost {
            best = i;
            best_cost = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DeploymentPlanner;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::zoo;
    use lens_wireless::{WirelessLink, WirelessTechnology};
    use proptest::prelude::*;

    fn alexnet_map(metric: Metric) -> (Vec<DeploymentOption>, DominanceMap) {
        let a = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&a, &DeviceProfile::jetson_tx2_gpu());
        let planner =
            DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)));
        let options = planner.enumerate(&a, &perf).unwrap();
        let map = DominanceMap::build(&options, metric).unwrap();
        (options, map)
    }

    #[test]
    fn segments_partition_the_throughput_axis() {
        let (_, map) = alexnet_map(Metric::Latency);
        let segs = map.segments();
        assert!(!segs.is_empty());
        assert_eq!(segs[0].from_mbps, 0.0);
        assert!(segs.last().unwrap().to_mbps.is_infinite());
        for w in segs.windows(2) {
            assert_eq!(w[0].to_mbps, w[1].from_mbps);
            assert_ne!(w[0].option_index, w[1].option_index, "segments merged");
        }
    }

    #[test]
    fn map_agrees_with_brute_force() {
        for metric in [Metric::Latency, Metric::Energy] {
            let (options, map) = alexnet_map(metric);
            for i in 1..400 {
                let tu = i as f64 * 0.1;
                let by_map = map.best_at(Mbps::new(tu));
                let brute = argmin_at(&options, metric, tu);
                let map_cost = options[by_map].cost(metric).at(Mbps::new(tu));
                let brute_cost = options[brute].cost(metric).at(Mbps::new(tu));
                assert!(
                    (map_cost - brute_cost).abs() < 1e-9,
                    "{metric} at {tu}: map gave {map_cost}, brute {brute_cost}"
                );
            }
        }
    }

    #[test]
    fn low_throughput_always_all_edge() {
        // As t_u -> 0 every communicating option diverges.
        for metric in [Metric::Latency, Metric::Energy] {
            let (options, map) = alexnet_map(metric);
            let best = map.best_at(Mbps::new(0.01));
            assert_eq!(options[best].to_string(), "All-Edge", "{metric}");
        }
    }

    #[test]
    fn thresholds_are_sorted_and_interior() {
        let (_, map) = alexnet_map(Metric::Energy);
        let th = map.thresholds();
        for w in th.windows(2) {
            assert!(w[0] < w[1]);
        }
        for t in th {
            assert!(t.get() > 0.0 && t.get().is_finite());
        }
    }

    #[test]
    fn empty_options_rejected() {
        assert!(matches!(
            DominanceMap::build(&[], Metric::Latency),
            Err(RuntimeError::NoOptions)
        ));
    }

    #[test]
    fn lookup_exactly_at_thresholds_is_optimal() {
        // Segment boundaries are inclusive on the right-hand segment; at the
        // exact pairwise threshold both options cost the same, so whichever
        // side the lookup resolves to must still be a pointwise argmin.
        for metric in [Metric::Latency, Metric::Energy] {
            let (options, map) = alexnet_map(metric);
            for threshold in map.thresholds() {
                let chosen = map.best_at(threshold);
                assert_eq!(
                    chosen,
                    map.segments()
                        .iter()
                        .find(|s| s.from_mbps == threshold.get())
                        .expect("threshold is a segment start")
                        .option_index,
                    "{metric}: boundary lookup must land on the upper segment"
                );
                let chosen_cost = options[chosen].cost(metric).at(threshold);
                let brute = argmin_at(&options, metric, threshold.get());
                let brute_cost = options[brute].cost(metric).at(threshold);
                assert!(
                    (chosen_cost - brute_cost).abs() < 1e-9,
                    "{metric} at threshold {threshold}: {chosen_cost} vs {brute_cost}"
                );
            }
        }
    }

    #[test]
    fn single_option_yields_one_unbounded_segment() {
        let (options, _) = alexnet_map(Metric::Latency);
        let solo = vec![options[0].clone()];
        let map = DominanceMap::build(&solo, Metric::Latency).unwrap();
        assert_eq!(map.segments().len(), 1);
        assert_eq!(map.segments()[0].from_mbps, 0.0);
        assert!(map.segments()[0].to_mbps.is_infinite());
        assert!(map.thresholds().is_empty());
        for tu in [0.01, 1.0, 1e6] {
            assert_eq!(map.best_at(Mbps::new(tu)), 0);
        }
    }

    #[test]
    fn identical_options_collapse_to_one_segment() {
        // Duplicated options have no crossovers at all; the map must not
        // fabricate thresholds.
        let (options, _) = alexnet_map(Metric::Energy);
        let twins = vec![options[0].clone(), options[0].clone()];
        let map = DominanceMap::build(&twins, Metric::Energy).unwrap();
        assert_eq!(map.segments().len(), 1);
        assert!(map.thresholds().is_empty());
    }

    #[test]
    fn display_renders_segments() {
        let (_, map) = alexnet_map(Metric::Latency);
        let s = format!("{map}");
        assert!(s.contains("dominance map (latency)"));
        assert!(s.contains("Mbps"));
    }

    proptest! {
        /// best_at is consistent with the brute-force argmin at arbitrary
        /// throughputs (including near thresholds).
        #[test]
        fn prop_best_at_matches_argmin(tu in 0.01f64..200.0) {
            let (options, map) = alexnet_map(Metric::Energy);
            let by_map = map.best_at(Mbps::new(tu));
            let brute = argmin_at(&options, Metric::Energy, tu);
            let a = options[by_map].cost(Metric::Energy).at(Mbps::new(tu));
            let b = options[brute].cost(Metric::Energy).at(Mbps::new(tu));
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
