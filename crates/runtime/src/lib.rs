//! Deployment options and runtime adaptation (§IV.E, Fig 5, Fig 8).
//!
//! A two-tier system can run a DNN **All-Edge**, **All-Cloud**, or
//! **partitioned** at any viable layer boundary. For a fixed architecture
//! and device, both total latency and total edge energy of every option are
//! *affine in `1/t_u`*:
//!
//! * latency: `L(t_u) = L_exec + L_RT + S·8/t_u`
//! * energy:  `E(t_u) = E_exec + α·S_mbit + β·S_mbit/t_u`
//!   (because `E_Tx = (α·t_u + β)·S/t_u`)
//!
//! which is what makes the paper's pairwise-threshold analysis exact: the
//! `t_u` ranges where each option dominates come from equating affine
//! functions (§IV.E), and the full dominance structure is the lower
//! envelope of a pencil of lines in `x = 1/t_u`.
//!
//! Modules:
//! * [`options`] — enumerate the deployment options of a profiled network
//!   and their affine costs (this is also the engine of Algorithm 1).
//! * [`envelope`] — dominance maps: which option is best on which `t_u`
//!   interval, with O(log n) (effectively O(1)) lookup.
//! * [`tracker`] — the online throughput tracker of Fig 5.
//! * [`simulator`] — replay a throughput trace and compare fixed deployment
//!   options against dynamic switching (Fig 8).
//!
//! # Examples
//!
//! Enumerate AlexNet's deployment options on a WiFi link, build the
//! dominance map for latency, and look up the best option at a measured
//! throughput:
//!
//! ```
//! use lens_runtime::{DeploymentPlanner, DominanceMap, Metric};
//! use lens_device::{profile_network, DeviceProfile};
//! use lens_nn::units::Mbps;
//! use lens_nn::zoo;
//! use lens_wireless::{WirelessLink, WirelessTechnology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let analysis = zoo::alexnet().analyze()?;
//! let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_gpu());
//! let planner =
//!     DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)));
//! let options = planner.enumerate(&analysis, &perf)?;
//! let map = DominanceMap::build(&options, Metric::Latency)?;
//!
//! // At 3 Mbps some option (edge, cloud, or a split) dominates…
//! let best = map.best_at(Mbps::new(3.0));
//! assert!(best < options.len());
//! // …and the cheapest cloud-free option backs admission-control
//! // fallback in fleet-scale simulators.
//! let local = DeploymentPlanner::local_fallback(&options, Metric::Latency, Mbps::new(3.0))?;
//! assert!(!options[local].uses_cloud());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod envelope;
pub mod options;
pub mod simulator;
pub mod thresholds;
pub mod tracker;

pub use envelope::{DominanceMap, Segment};
pub use options::{AffineCost, DeploymentKind, DeploymentOption, DeploymentPlanner, Metric};
pub use simulator::{RuntimeSimulator, SimulationReport};
pub use thresholds::{dominant_range, pairwise_thresholds, PairwiseThreshold};
pub use tracker::ThroughputTracker;

use std::error::Error;
use std::fmt;

/// Errors produced by the runtime substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No deployment options were provided.
    NoOptions,
    /// The network/performance inputs disagree.
    InconsistentInputs(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoOptions => write!(f, "no deployment options to compare"),
            RuntimeError::InconsistentInputs(why) => write!(f, "inconsistent inputs: {why}"),
        }
    }
}

impl Error for RuntimeError {}
