//! Wireless technologies and their uplink power models.
//!
//! The paper determines `P_Tx` "using the power models proposed in \[13\]"
//! (Huang et al., MobiSys 2012), which fit the radio's transmission power as
//! an affine function of uplink throughput: `P_Tx(t_u) = α_u · t_u + β`.
//! The α/β values below are the published fits (Table 4 of that paper).

use lens_nn::units::{Mbps, Millis, Milliwatts};
use std::fmt;

/// The affine uplink power model `P_Tx = α_u · t_u + β`.
///
/// # Examples
///
/// ```
/// use lens_nn::units::Mbps;
/// use lens_wireless::WirelessTechnology;
///
/// let lte = WirelessTechnology::Lte.power_model();
/// let p = lte.power_at(Mbps::new(10.0));
/// // 438.39 * 10 + 1288.04 ≈ 5672 mW
/// assert!((p.get() - 5671.94).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkPowerModel {
    alpha_mw_per_mbps: f64,
    beta_mw: f64,
}

impl UplinkPowerModel {
    /// Creates a power model from its affine coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn new(alpha_mw_per_mbps: f64, beta_mw: f64) -> Self {
        assert!(
            alpha_mw_per_mbps.is_finite() && alpha_mw_per_mbps >= 0.0,
            "alpha must be finite and non-negative"
        );
        assert!(
            beta_mw.is_finite() && beta_mw >= 0.0,
            "beta must be finite and non-negative"
        );
        UplinkPowerModel {
            alpha_mw_per_mbps,
            beta_mw,
        }
    }

    /// Throughput-proportional coefficient `α_u` in mW per Mbps.
    pub fn alpha_mw_per_mbps(&self) -> f64 {
        self.alpha_mw_per_mbps
    }

    /// Base transmission power `β` in mW.
    pub fn beta_mw(&self) -> f64 {
        self.beta_mw
    }

    /// Transmission power at the given uplink throughput.
    pub fn power_at(&self, throughput: Mbps) -> Milliwatts {
        Milliwatts::new(self.alpha_mw_per_mbps * throughput.get() + self.beta_mw)
    }
}

/// Supported radio technologies — the `Tech` input of Algorithms 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WirelessTechnology {
    /// IEEE 802.11 WiFi.
    Wifi,
    /// 4G LTE.
    Lte,
    /// 3G (WCDMA).
    ThreeG,
}

impl WirelessTechnology {
    /// The published Huang et al. (MobiSys 2012) uplink power fit for this
    /// technology — the paper's `Select(Tech)` returning `(α_u, β)`.
    pub fn power_model(self) -> UplinkPowerModel {
        match self {
            WirelessTechnology::Wifi => UplinkPowerModel::new(283.17, 132.86),
            WirelessTechnology::Lte => UplinkPowerModel::new(438.39, 1288.04),
            WirelessTechnology::ThreeG => UplinkPowerModel::new(868.98, 817.88),
        }
    }

    /// A typical round-trip network latency `L_RT` for the technology. The
    /// paper measures it with ping ("the average TRT is determined from the
    /// average of multiple ping requests"); these defaults are in the range
    /// such measurements give and can be overridden per
    /// [`WirelessLink`](crate::WirelessLink).
    pub fn default_round_trip(self) -> Millis {
        match self {
            WirelessTechnology::Wifi => Millis::new(10.0),
            WirelessTechnology::Lte => Millis::new(70.0),
            WirelessTechnology::ThreeG => Millis::new(200.0),
        }
    }

    /// All supported technologies.
    pub fn all() -> [WirelessTechnology; 3] {
        [
            WirelessTechnology::Wifi,
            WirelessTechnology::Lte,
            WirelessTechnology::ThreeG,
        ]
    }
}

impl fmt::Display for WirelessTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessTechnology::Wifi => write!(f, "WiFi"),
            WirelessTechnology::Lte => write!(f, "LTE"),
            WirelessTechnology::ThreeG => write!(f, "3G"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_parameters() {
        let wifi = WirelessTechnology::Wifi.power_model();
        assert_eq!(wifi.alpha_mw_per_mbps(), 283.17);
        assert_eq!(wifi.beta_mw(), 132.86);
        let lte = WirelessTechnology::Lte.power_model();
        assert_eq!(lte.alpha_mw_per_mbps(), 438.39);
        assert_eq!(lte.beta_mw(), 1288.04);
        let three_g = WirelessTechnology::ThreeG.power_model();
        assert_eq!(three_g.alpha_mw_per_mbps(), 868.98);
        assert_eq!(three_g.beta_mw(), 817.88);
    }

    #[test]
    fn power_is_affine_in_throughput() {
        let m = UplinkPowerModel::new(100.0, 50.0);
        assert_eq!(m.power_at(Mbps::new(1.0)).get(), 150.0);
        assert_eq!(m.power_at(Mbps::new(2.0)).get(), 250.0);
    }

    #[test]
    fn lte_radio_costs_more_than_wifi_at_same_rate() {
        // One of the paper's implicit premises: LTE transmission is far more
        // power-hungry than WiFi, shifting Table I's preferences.
        for tu in [0.7, 3.0, 7.5, 16.1] {
            let tu = Mbps::new(tu);
            let wifi = WirelessTechnology::Wifi.power_model().power_at(tu);
            let lte = WirelessTechnology::Lte.power_model().power_at(tu);
            assert!(lte > wifi);
        }
    }

    #[test]
    fn default_rtt_ordering() {
        assert!(
            WirelessTechnology::Wifi.default_round_trip()
                < WirelessTechnology::Lte.default_round_trip()
        );
        assert!(
            WirelessTechnology::Lte.default_round_trip()
                < WirelessTechnology::ThreeG.default_round_trip()
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn negative_alpha_panics() {
        UplinkPowerModel::new(-1.0, 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", WirelessTechnology::Wifi), "WiFi");
        assert_eq!(format!("{}", WirelessTechnology::Lte), "LTE");
        assert_eq!(format!("{}", WirelessTechnology::ThreeG), "3G");
        assert_eq!(WirelessTechnology::all().len(), 3);
    }
}
