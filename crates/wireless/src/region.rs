//! Regional expected-throughput profiles.
//!
//! The paper's Table I motivates design-time wireless awareness with the
//! average user-experienced uplink throughputs reported by Opensignal's
//! "State of Mobile Network Experience 2020": the same AlexNet prefers
//! different deployment options in South Korea (16.1 Mbps), the USA
//! (7.5 Mbps), and Afghanistan (0.7 Mbps).

use lens_nn::units::Mbps;
use std::fmt;

/// A deployment region with its expected average uplink throughput.
///
/// # Examples
///
/// ```
/// use lens_wireless::Region;
///
/// let regions = Region::opensignal_2020();
/// let usa = regions.iter().find(|r| r.name() == "USA").expect("USA profile");
/// assert_eq!(usa.uplink().get(), 7.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    name: String,
    uplink: Mbps,
}

impl Region {
    /// Creates a region profile.
    pub fn new(name: impl Into<String>, uplink: Mbps) -> Self {
        Region {
            name: name.into(),
            uplink,
        }
    }

    /// The region's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected average uplink throughput.
    pub fn uplink(&self) -> Mbps {
        self.uplink
    }

    /// The three regions the paper's Table I uses, with the Opensignal 2020
    /// average experienced upload throughputs it quotes.
    pub fn opensignal_2020() -> Vec<Region> {
        vec![
            Region::new("S. Korea", Mbps::new(16.1)),
            Region::new("USA", Mbps::new(7.5)),
            Region::new("Afghanistan", Mbps::new(0.7)),
        ]
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.uplink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_regions_present() {
        let regions = Region::opensignal_2020();
        assert_eq!(regions.len(), 3);
        let by_name = |n: &str| {
            regions
                .iter()
                .find(|r| r.name() == n)
                .unwrap_or_else(|| panic!("missing region {n}"))
        };
        assert_eq!(by_name("S. Korea").uplink().get(), 16.1);
        assert_eq!(by_name("USA").uplink().get(), 7.5);
        assert_eq!(by_name("Afghanistan").uplink().get(), 0.7);
    }

    #[test]
    fn regions_ordered_fast_to_slow() {
        let regions = Region::opensignal_2020();
        for pair in regions.windows(2) {
            assert!(pair[0].uplink() > pair[1].uplink());
        }
    }

    #[test]
    fn display_includes_throughput() {
        let r = Region::new("Testland", Mbps::new(2.5));
        assert_eq!(format!("{r}"), "Testland (2.50 Mbps)");
    }
}
