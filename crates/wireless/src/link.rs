//! A configured edge→cloud wireless link and the Eq. 3–6 cost computations.

use crate::technology::{UplinkPowerModel, WirelessTechnology};
use lens_nn::units::{Bytes, Mbps, Millijoules, Millis, Milliwatts};
use std::fmt;

/// An uplink from the edge device to the cloud: technology, expected
/// throughput `t_u`, and round-trip latency `L_RT`.
///
/// This is the design-time wireless expectation the user hands to LENS
/// (Fig 3's "Supported Wireless Technology" + "Expected Wireless
/// Conditions" inputs).
///
/// # Examples
///
/// ```
/// use lens_nn::units::{Bytes, Mbps};
/// use lens_wireless::{WirelessLink, WirelessTechnology};
///
/// // The paper's search setting: WiFi at t_u = 3 Mbps.
/// let link = WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0));
/// let image = Bytes::new(150_528); // 147 kB input image
/// let l = link.comm_latency(image);
/// // 1.204224 Mbit / 3 Mbps ≈ 401 ms, + 10 ms RTT.
/// assert!((l.get() - 411.408).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirelessLink {
    technology: WirelessTechnology,
    throughput: Mbps,
    round_trip: Millis,
}

impl WirelessLink {
    /// Creates a link with the technology's default round-trip latency.
    pub fn new(technology: WirelessTechnology, throughput: Mbps) -> Self {
        WirelessLink {
            technology,
            throughput,
            round_trip: technology.default_round_trip(),
        }
    }

    /// Creates a link with an explicitly measured round-trip latency.
    pub fn with_round_trip(
        technology: WirelessTechnology,
        throughput: Mbps,
        round_trip: Millis,
    ) -> Self {
        WirelessLink {
            technology,
            throughput,
            round_trip,
        }
    }

    /// Returns this link at a different throughput (same technology/RTT) —
    /// used by the runtime analysis when sweeping `t_u`.
    pub fn at_throughput(&self, throughput: Mbps) -> WirelessLink {
        WirelessLink {
            throughput,
            ..*self
        }
    }

    /// The radio technology.
    pub fn technology(&self) -> WirelessTechnology {
        self.technology
    }

    /// The expected uplink throughput `t_u`.
    pub fn throughput(&self) -> Mbps {
        self.throughput
    }

    /// The round-trip latency `L_RT`.
    pub fn round_trip(&self) -> Millis {
        self.round_trip
    }

    /// The technology's uplink power model.
    pub fn power_model(&self) -> UplinkPowerModel {
        self.technology.power_model()
    }

    /// Transmission power at this link's throughput, `P_Tx = α_u·t_u + β`.
    pub fn tx_power(&self) -> Milliwatts {
        self.power_model().power_at(self.throughput)
    }

    /// Transmission latency `L_Tx = Size(data)/t_u` (Eq. 5).
    pub fn tx_latency(&self, data: Bytes) -> Millis {
        data.tx_latency(self.throughput)
    }

    /// Transmission energy `E_Tx = P_Tx · L_Tx` (Eq. 6).
    pub fn tx_energy(&self, data: Bytes) -> Millijoules {
        self.tx_power() * self.tx_latency(data)
    }

    /// Communication latency `L_comm = L_Tx + L_RT` (Eq. 3).
    pub fn comm_latency(&self, data: Bytes) -> Millis {
        self.tx_latency(data) + self.round_trip
    }

    /// Communication energy `E_comm = E_Tx` (Eq. 4): the edge pays only for
    /// transmission; reception of the tiny result is neglected, as in the
    /// paper.
    pub fn comm_energy(&self, data: Bytes) -> Millijoules {
        self.tx_energy(data)
    }
}

impl fmt::Display for WirelessLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} (RTT {})",
            self.technology, self.throughput, self.round_trip
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn comm_latency_decomposes() {
        let link = WirelessLink::with_round_trip(
            WirelessTechnology::Lte,
            Mbps::new(2.0),
            Millis::new(50.0),
        );
        let data = Bytes::new(250_000); // 2 Mbit
        assert!((link.tx_latency(data).get() - 1000.0).abs() < 1e-9);
        assert!((link.comm_latency(data).get() - 1050.0).abs() < 1e-9);
    }

    #[test]
    fn tx_energy_matches_hand_computation() {
        let link = WirelessLink::new(WirelessTechnology::Lte, Mbps::new(10.0));
        let data = Bytes::new(1_250_000); // 10 Mbit -> 1 s at 10 Mbps
        let p = 438.39 * 10.0 + 1288.04; // mW
        let e = link.tx_energy(data);
        assert!((e.get() - p).abs() < 1e-6, "1 second at {p} mW = {p} mJ");
    }

    #[test]
    fn energy_closed_form_is_affine_in_inverse_throughput() {
        // E(t_u) = alpha*S_mbit + beta*S_mbit/t_u — check at two rates.
        let tech = WirelessTechnology::Wifi;
        let data = Bytes::new(36_864); // pool5-sized
        let s_mbit = data.megabits();
        let m = tech.power_model();
        for tu in [0.7, 3.0, 16.1, 30.0] {
            let link = WirelessLink::new(tech, Mbps::new(tu));
            let expected = m.alpha_mw_per_mbps() * s_mbit + m.beta_mw() * s_mbit / tu;
            assert!((link.tx_energy(data).get() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn at_throughput_preserves_tech_and_rtt() {
        let base = WirelessLink::with_round_trip(
            WirelessTechnology::Wifi,
            Mbps::new(3.0),
            Millis::new(12.0),
        );
        let fast = base.at_throughput(Mbps::new(30.0));
        assert_eq!(fast.technology(), WirelessTechnology::Wifi);
        assert_eq!(fast.round_trip(), Millis::new(12.0));
        assert_eq!(fast.throughput(), Mbps::new(30.0));
    }

    #[test]
    fn display_mentions_everything() {
        let link = WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0));
        let s = format!("{link}");
        assert!(s.contains("WiFi") && s.contains("3.00 Mbps"));
    }

    proptest! {
        /// Monotonicity: more data never costs less, higher throughput
        /// never has higher transmission latency.
        #[test]
        fn prop_link_monotonicity(
            small in 1_000u64..100_000,
            extra in 1u64..100_000,
            tu_lo in 0.5f64..10.0,
            tu_hi_mult in 1.01f64..10.0,
        ) {
            let tech = WirelessTechnology::Lte;
            let slow = WirelessLink::new(tech, Mbps::new(tu_lo));
            let fast = WirelessLink::new(tech, Mbps::new(tu_lo * tu_hi_mult));
            let a = Bytes::new(small);
            let b = Bytes::new(small + extra);
            prop_assert!(slow.tx_latency(b) > slow.tx_latency(a));
            prop_assert!(slow.tx_energy(b) > slow.tx_energy(a));
            prop_assert!(fast.tx_latency(a) < slow.tx_latency(a));
            // Energy is NOT monotone in throughput in general (power grows
            // with t_u) but the beta-term always shrinks:
            let m = tech.power_model();
            let beta_part_slow = m.beta_mw() * a.megabits() / tu_lo;
            let beta_part_fast = m.beta_mw() * a.megabits() / (tu_lo * tu_hi_mult);
            prop_assert!(beta_part_fast < beta_part_slow);
        }
    }
}
