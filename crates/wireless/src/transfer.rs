//! Fixed-point inter-stage transfer pricing.
//!
//! The float-valued [`WirelessLink`](crate::WirelessLink) model answers the
//! *design-time* question (Eq. 3–6: what does this uplink cost in expectation?).
//! Staged split-inference pipelines need the *simulation-time* variant: a
//! transfer cost that shifts discrete event arrival times, and therefore must
//! be an exact integer number of microseconds — the fleet simulator's
//! bit-identity contract forbids float accumulation on any path that feeds an
//! event timestamp. [`TransferModel`] quantizes the link rate **once** at
//! construction and prices every transfer in pure `u128` integer arithmetic,
//! so the same `(rate, bytes)` pair yields the same microsecond cost on every
//! shard layout, replay mode, and machine.
//!
//! ```
//! use lens_nn::units::Mbps;
//! use lens_wireless::TransferModel;
//!
//! // A 7.5 Mbps uplink moving a 150 528-byte activation tensor.
//! let model = TransferModel::new(Mbps::new(7.5));
//! let us = model.cost_us(150_528);
//! assert_eq!(us, 160_564); // ceil(150_528 · 8 · 1e6 / 7_500_000)
//! // Fixed-point: the price is exact and reproducible, never a float.
//! assert_eq!(model.cost_us(150_528), us);
//! ```

use lens_nn::units::{Mbps, Millis};

/// Microseconds per second — the clock base every cost is expressed in.
const US_PER_SEC: u128 = 1_000_000;

/// An integer-microsecond transfer-cost model for one link.
///
/// Construction quantizes the float link rate to bits-per-second once;
/// after that every [`cost_us`](TransferModel::cost_us) call is integer-only.
/// Costs round **up** (a transfer is not done until the last bit lands) and
/// saturate at `u64::MAX` rather than wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferModel {
    /// Quantized link rate in bits per second (≥ 1).
    rate_bps: u64,
    /// Fixed per-transfer latency floor in microseconds (e.g. a round trip).
    rtt_us: u64,
}

impl TransferModel {
    /// Builds a model from a link rate, quantizing it to whole bits per
    /// second. Non-finite or non-positive rates clamp to 1 bps so the cost
    /// stays finite and monotone instead of dividing by zero.
    pub fn new(rate: Mbps) -> Self {
        let raw = rate.get() * 1e6;
        let rate_bps = if raw.is_finite() && raw >= 1.0 {
            // 2^53 bound keeps the round-trip through f64 exact.
            (raw.round() as u64).min(1 << 53)
        } else {
            1
        };
        TransferModel {
            rate_bps,
            rtt_us: 0,
        }
    }

    /// Adds a fixed round-trip floor, quantized to whole microseconds.
    #[must_use]
    pub fn with_round_trip(mut self, rtt: Millis) -> Self {
        let raw = rtt.get() * 1_000.0;
        self.rtt_us = if raw.is_finite() && raw > 0.0 {
            (raw.round() as u64).min(1 << 53)
        } else {
            0
        };
        self
    }

    /// The quantized link rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// The fixed per-transfer floor in microseconds.
    pub fn round_trip_us(&self) -> u64 {
        self.rtt_us
    }

    /// Prices moving `bytes` over this link, in whole microseconds:
    /// `ceil(bytes · 8 · 1e6 / rate_bps) + rtt_us`, computed in `u128` so
    /// the largest representable tensor cannot overflow, saturating at
    /// `u64::MAX`.
    pub fn cost_us(&self, bytes: u64) -> u64 {
        let bits = u128::from(bytes) * 8;
        let rate = u128::from(self.rate_bps);
        let tx = (bits * US_PER_SEC).div_ceil(rate);
        let total = tx.saturating_add(u128::from(self.rtt_us));
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// The same price as [`cost_us`](TransferModel::cost_us) expressed in
    /// milliseconds. Derived *from* the integer microsecond cost (not
    /// recomputed in floats), so it is exactly `cost_us / 1000` and carries
    /// no extra rounding of its own.
    pub fn cost_ms(&self, bytes: u64) -> f64 {
        self.cost_us(bytes) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_rate_once() {
        let model = TransferModel::new(Mbps::new(7.5));
        assert_eq!(model.rate_bps(), 7_500_000);
        assert_eq!(model.round_trip_us(), 0);
    }

    #[test]
    fn zero_bytes_costs_only_the_round_trip() {
        let model = TransferModel::new(Mbps::new(7.5)).with_round_trip(Millis::new(69.0));
        assert_eq!(model.cost_us(0), 69_000);
    }

    #[test]
    fn rounds_up_to_the_last_bit() {
        // 1 byte at 3 Mbps: 8e6 / 3e6 = 2.67 µs → 3 µs.
        let model = TransferModel::new(Mbps::new(3.0));
        assert_eq!(model.cost_us(1), 3);
    }

    #[test]
    fn cost_is_monotone_in_bytes_and_antitone_in_rate() {
        let slow = TransferModel::new(Mbps::new(0.7));
        let fast = TransferModel::new(Mbps::new(16.1));
        let mut prev = 0;
        for bytes in [0u64, 1, 1_000, 150_528, 10_000_000] {
            let cost = slow.cost_us(bytes);
            assert!(cost >= prev);
            assert!(fast.cost_us(bytes) <= cost);
            prev = cost;
        }
    }

    #[test]
    fn degenerate_rates_clamp_instead_of_dividing_by_zero() {
        // Mbps::new rejects non-finite and non-positive rates; the clamp
        // guards the remaining hole — rates that quantize below one bit/s.
        let model = TransferModel::new(Mbps::new(1e-9));
        assert_eq!(model.rate_bps(), 1);
        let _ = model.cost_us(u64::MAX); // must not panic
    }

    #[test]
    fn huge_transfers_saturate() {
        let model = TransferModel::new(Mbps::new(0.7));
        assert_eq!(model.cost_us(u64::MAX), u64::MAX);
    }

    #[test]
    fn ms_view_is_derived_from_the_integer_cost() {
        let model = TransferModel::new(Mbps::new(7.5));
        let us = model.cost_us(150_528);
        assert_eq!(model.cost_ms(150_528), us as f64 / 1_000.0);
    }
}
