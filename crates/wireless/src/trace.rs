//! Throughput traces and their synthetic generator.
//!
//! §V.C of the paper collects LTE uplink throughput with TestMyNet, "every
//! 5 minutes for 40 samples", and replays it through the runtime switcher.
//! We cannot rerun those phone measurements, so [`TraceGenerator`] produces
//! a statistically similar stand-in: a stationary log-AR(1) process (bursty,
//! positive, heavy-tailed — the standard shape of measured cellular uplink
//! rates), fully determined by a seed. Real measurements can be loaded with
//! [`ThroughputTrace::from_csv`].

use crate::WirelessError;
use lens_nn::units::{Mbps, Millis};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A sequence of uplink-throughput samples at a fixed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputTrace {
    samples: Vec<Mbps>,
    interval: Millis,
}

impl ThroughputTrace {
    /// Creates a trace from samples and the sampling interval.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidTrace`] if `samples` is empty.
    pub fn new(samples: Vec<Mbps>, interval: Millis) -> Result<Self, WirelessError> {
        if samples.is_empty() {
            return Err(WirelessError::InvalidTrace("no samples".into()));
        }
        Ok(ThroughputTrace { samples, interval })
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[Mbps] {
        &self.samples
    }

    /// The interval between consecutive samples.
    pub fn interval(&self) -> Millis {
        self.interval
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `false` by construction (empty traces cannot be built).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean throughput over the trace.
    pub fn mean(&self) -> Mbps {
        let raw: Vec<f64> = self.samples.iter().map(|m| m.get()).collect();
        Mbps::new(lens_num::stats::mean(&raw).expect("trace is non-empty"))
    }

    /// Minimum and maximum sample.
    pub fn min_max(&self) -> (Mbps, Mbps) {
        let raw: Vec<f64> = self.samples.iter().map(|m| m.get()).collect();
        let (lo, hi) = lens_num::stats::min_max(&raw).expect("trace is non-empty");
        (Mbps::new(lo), Mbps::new(hi))
    }

    /// Fraction of samples strictly above `threshold` — used to sanity-check
    /// that a trace actually crosses a switching threshold.
    pub fn fraction_above(&self, threshold: Mbps) -> f64 {
        let above = self.samples.iter().filter(|&&s| s > threshold).count();
        above as f64 / self.samples.len() as f64
    }

    /// Serializes to a two-column CSV (`minutes,mbps`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("minutes,mbps\n");
        for (i, s) in self.samples.iter().enumerate() {
            let minutes = self.interval.get() * i as f64 / 60_000.0;
            out.push_str(&format!("{:.2},{:.4}\n", minutes, s.get()));
        }
        out
    }

    /// Parses the [`to_csv`](Self::to_csv) format (header optional). The
    /// interval is inferred from the first two timestamps, defaulting to
    /// 5 minutes for single-sample traces.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::ParseTrace`] for malformed rows and
    /// [`WirelessError::InvalidTrace`] when no samples are present.
    pub fn from_csv(text: &str) -> Result<Self, WirelessError> {
        let mut times = Vec::new();
        let mut samples = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (idx == 0 && line.starts_with("minutes")) {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |s: Option<&str>, what: &str| -> Result<f64, WirelessError> {
                s.ok_or_else(|| WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("missing {what}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|e| WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("bad {what}: {e}"),
                })
            };
            let minutes = parse(parts.next(), "timestamp")?;
            let mbps = parse(parts.next(), "throughput")?;
            if !mbps.is_finite() || mbps <= 0.0 {
                return Err(WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("throughput must be positive, got {mbps}"),
                });
            }
            times.push(minutes);
            samples.push(Mbps::new(mbps));
        }
        if samples.is_empty() {
            return Err(WirelessError::InvalidTrace("no samples in CSV".into()));
        }
        let interval = if times.len() >= 2 {
            Millis::new(((times[1] - times[0]) * 60_000.0).max(1.0))
        } else {
            Millis::new(5.0 * 60_000.0)
        };
        ThroughputTrace::new(samples, interval)
    }
}

impl fmt::Display for ThroughputTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.min_max();
        write!(
            f,
            "{} samples @ {:.1} min, mean {}, range [{}, {}]",
            self.len(),
            self.interval.get() / 60_000.0,
            self.mean(),
            lo,
            hi
        )
    }
}

/// Seeded generator of synthetic uplink-throughput traces (log-AR(1)).
///
/// # Examples
///
/// ```
/// use lens_nn::units::Mbps;
/// use lens_wireless::TraceGenerator;
///
/// // A TestMyNet-like LTE trace: 40 samples, 5-minute interval.
/// let trace = TraceGenerator::lte_like(Mbps::new(10.0)).generate(42);
/// assert_eq!(trace.len(), 40);
/// assert!(trace.mean().get() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    median: Mbps,
    log_sigma: f64,
    ar_coefficient: f64,
    num_samples: usize,
    interval: Millis,
}

impl TraceGenerator {
    /// Creates a generator with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `log_sigma` is negative, `ar_coefficient` is outside
    /// `[0, 1)`, or `num_samples` is zero.
    pub fn new(
        median: Mbps,
        log_sigma: f64,
        ar_coefficient: f64,
        num_samples: usize,
        interval: Millis,
    ) -> Self {
        assert!(log_sigma >= 0.0, "log_sigma must be non-negative");
        assert!(
            (0.0..1.0).contains(&ar_coefficient),
            "ar_coefficient must be in [0,1)"
        );
        assert!(num_samples > 0, "num_samples must be positive");
        TraceGenerator {
            median,
            log_sigma,
            ar_coefficient,
            num_samples,
            interval,
        }
    }

    /// The paper's measurement protocol: 40 LTE samples at 5-minute
    /// intervals, moderately bursty around the given median.
    pub fn lte_like(median: Mbps) -> Self {
        TraceGenerator::new(median, 0.55, 0.45, 40, Millis::new(5.0 * 60_000.0))
    }

    /// Overrides the number of samples.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.num_samples = num_samples;
        self
    }

    /// Generates a trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ThroughputTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mu = self.median.get().ln();
        // Stationary AR(1) in log space.
        let mut y = mu + self.log_sigma * dist::standard_normal(&mut rng);
        let innovation_scale = self.log_sigma * (1.0 - self.ar_coefficient.powi(2)).sqrt();
        let samples = (0..self.num_samples)
            .map(|_| {
                let sample = y.exp().clamp(0.05, 200.0);
                y = mu
                    + self.ar_coefficient * (y - mu)
                    + innovation_scale * dist::standard_normal(&mut rng);
                Mbps::new(sample)
            })
            .collect();
        ThroughputTrace::new(samples, self.interval).expect("generator produces >=1 sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lte_like_matches_paper_protocol() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(1);
        assert_eq!(t.len(), 40);
        assert_eq!(t.interval(), Millis::new(300_000.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = TraceGenerator::lte_like(Mbps::new(8.0));
        assert_eq!(g.generate(5), g.generate(5));
        assert_ne!(g.generate(5), g.generate(6));
    }

    #[test]
    fn median_roughly_controls_level() {
        let slow = TraceGenerator::lte_like(Mbps::new(2.0))
            .with_samples(400)
            .generate(9);
        let fast = TraceGenerator::lte_like(Mbps::new(20.0))
            .with_samples(400)
            .generate(9);
        assert!(fast.mean() > slow.mean());
    }

    #[test]
    fn csv_round_trip() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(3);
        let csv = t.to_csv();
        let parsed = ThroughputTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), t.len());
        assert_eq!(parsed.interval(), t.interval());
        for (a, b) in parsed.samples().iter().zip(t.samples()) {
            assert!((a.get() - b.get()).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let err = ThroughputTrace::from_csv("minutes,mbps\n0.0,not-a-number\n").unwrap_err();
        assert!(matches!(err, WirelessError::ParseTrace { line: 2, .. }));
        let err = ThroughputTrace::from_csv("minutes,mbps\n0.0,-3.0\n").unwrap_err();
        assert!(matches!(err, WirelessError::ParseTrace { line: 2, .. }));
        let err = ThroughputTrace::from_csv("minutes,mbps\n").unwrap_err();
        assert!(matches!(err, WirelessError::InvalidTrace(_)));
    }

    #[test]
    fn fraction_above_is_consistent() {
        let t = ThroughputTrace::new(
            vec![
                Mbps::new(1.0),
                Mbps::new(5.0),
                Mbps::new(10.0),
                Mbps::new(20.0),
            ],
            Millis::new(1000.0),
        )
        .unwrap();
        assert_eq!(t.fraction_above(Mbps::new(7.0)), 0.5);
        assert_eq!(t.fraction_above(Mbps::new(0.5)), 1.0);
        assert_eq!(t.fraction_above(Mbps::new(50.0)), 0.0);
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(
            ThroughputTrace::new(vec![], Millis::new(1.0)),
            Err(WirelessError::InvalidTrace(_))
        ));
    }

    #[test]
    fn display_summarizes() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(3);
        let s = format!("{t}");
        assert!(s.contains("40 samples"));
    }

    proptest! {
        /// Every generated sample is positive and bounded; traces of any
        /// seed/median combination stay valid.
        #[test]
        fn prop_generated_traces_valid(seed in 0u64..1000, median in 0.5f64..50.0) {
            let t = TraceGenerator::lte_like(Mbps::new(median)).generate(seed);
            for s in t.samples() {
                prop_assert!(s.get() >= 0.05 && s.get() <= 200.0);
            }
        }
    }
}
