//! Throughput traces and their synthetic generator.
//!
//! §V.C of the paper collects LTE uplink throughput with TestMyNet, "every
//! 5 minutes for 40 samples", and replays it through the runtime switcher.
//! We cannot rerun those phone measurements, so [`TraceGenerator`] produces
//! a statistically similar stand-in: a stationary log-AR(1) process (bursty,
//! positive, heavy-tailed — the standard shape of measured cellular uplink
//! rates), fully determined by a seed. Real measurements can be loaded with
//! [`ThroughputTrace::from_csv`].

use crate::region::Region;
use crate::technology::WirelessTechnology;
use crate::WirelessError;
use lens_nn::units::{Mbps, Millis};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A sequence of uplink-throughput samples at a fixed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputTrace {
    samples: Vec<Mbps>,
    interval: Millis,
}

impl ThroughputTrace {
    /// Creates a trace from samples and the sampling interval.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidTrace`] if `samples` is empty.
    pub fn new(samples: Vec<Mbps>, interval: Millis) -> Result<Self, WirelessError> {
        if samples.is_empty() {
            return Err(WirelessError::InvalidTrace("no samples".into()));
        }
        Ok(ThroughputTrace { samples, interval })
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[Mbps] {
        &self.samples
    }

    /// The interval between consecutive samples.
    pub fn interval(&self) -> Millis {
        self.interval
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `false` by construction (empty traces cannot be built).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean throughput over the trace.
    pub fn mean(&self) -> Mbps {
        let raw: Vec<f64> = self.samples.iter().map(|m| m.get()).collect();
        Mbps::new(lens_num::stats::mean(&raw).expect("trace is non-empty"))
    }

    /// Minimum and maximum sample.
    pub fn min_max(&self) -> (Mbps, Mbps) {
        let raw: Vec<f64> = self.samples.iter().map(|m| m.get()).collect();
        let (lo, hi) = lens_num::stats::min_max(&raw).expect("trace is non-empty");
        (Mbps::new(lo), Mbps::new(hi))
    }

    /// Fraction of samples strictly above `threshold` — used to sanity-check
    /// that a trace actually crosses a switching threshold.
    pub fn fraction_above(&self, threshold: Mbps) -> f64 {
        let above = self.samples.iter().filter(|&&s| s > threshold).count();
        above as f64 / self.samples.len() as f64
    }

    /// Synthesizes a per-device trace around a region's expected uplink
    /// rate with a technology-dependent volatility — the fleet-scale
    /// counterpart of replaying the single measured LTE trace. The process
    /// is the Gauss–Markov model of [`GaussMarkov`]; every sample is
    /// strictly positive by construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use lens_nn::units::{Mbps, Millis};
    /// use lens_wireless::{Region, ThroughputTrace, WirelessTechnology};
    ///
    /// let usa = Region::new("USA", Mbps::new(7.5));
    /// let t = ThroughputTrace::synthesize(
    ///     &usa, WirelessTechnology::Lte, 12, Millis::new(300_000.0), 7);
    /// assert_eq!(t.len(), 12);
    /// assert!(t.samples().iter().all(|s| s.get() > 0.0));
    /// ```
    pub fn synthesize(
        region: &Region,
        technology: WirelessTechnology,
        num_samples: usize,
        interval: Millis,
        seed: u64,
    ) -> ThroughputTrace {
        GaussMarkov::for_technology(region.uplink(), technology)
            .with_samples(num_samples)
            .with_interval(interval)
            .generate(seed)
    }

    /// Serializes to a two-column CSV (`minutes,mbps`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("minutes,mbps\n");
        for (i, s) in self.samples.iter().enumerate() {
            let minutes = self.interval.get() * i as f64 / 60_000.0;
            out.push_str(&format!("{:.2},{:.4}\n", minutes, s.get()));
        }
        out
    }

    /// Parses the [`to_csv`](Self::to_csv) format (header optional). The
    /// interval is inferred from the first two timestamps, defaulting to
    /// 5 minutes for single-sample traces.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::ParseTrace`] for malformed rows and
    /// [`WirelessError::InvalidTrace`] when no samples are present.
    pub fn from_csv(text: &str) -> Result<Self, WirelessError> {
        let mut times = Vec::new();
        let mut samples = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (idx == 0 && line.starts_with("minutes")) {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |s: Option<&str>, what: &str| -> Result<f64, WirelessError> {
                s.ok_or_else(|| WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("missing {what}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|e| WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("bad {what}: {e}"),
                })
            };
            let minutes = parse(parts.next(), "timestamp")?;
            let mbps = parse(parts.next(), "throughput")?;
            if !mbps.is_finite() || mbps <= 0.0 {
                return Err(WirelessError::ParseTrace {
                    line: idx + 1,
                    reason: format!("throughput must be positive, got {mbps}"),
                });
            }
            times.push(minutes);
            samples.push(Mbps::new(mbps));
        }
        if samples.is_empty() {
            return Err(WirelessError::InvalidTrace("no samples in CSV".into()));
        }
        let interval = if times.len() >= 2 {
            Millis::new(((times[1] - times[0]) * 60_000.0).max(1.0))
        } else {
            Millis::new(5.0 * 60_000.0)
        };
        ThroughputTrace::new(samples, interval)
    }
}

impl fmt::Display for ThroughputTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.min_max();
        write!(
            f,
            "{} samples @ {:.1} min, mean {}, range [{}, {}]",
            self.len(),
            self.interval.get() / 60_000.0,
            self.mean(),
            lo,
            hi
        )
    }
}

/// Seeded generator of synthetic uplink-throughput traces (log-AR(1)).
///
/// # Examples
///
/// ```
/// use lens_nn::units::Mbps;
/// use lens_wireless::TraceGenerator;
///
/// // A TestMyNet-like LTE trace: 40 samples, 5-minute interval.
/// let trace = TraceGenerator::lte_like(Mbps::new(10.0)).generate(42);
/// assert_eq!(trace.len(), 40);
/// assert!(trace.mean().get() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    median: Mbps,
    log_sigma: f64,
    ar_coefficient: f64,
    num_samples: usize,
    interval: Millis,
}

impl TraceGenerator {
    /// Creates a generator with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `log_sigma` is negative, `ar_coefficient` is outside
    /// `[0, 1)`, or `num_samples` is zero.
    pub fn new(
        median: Mbps,
        log_sigma: f64,
        ar_coefficient: f64,
        num_samples: usize,
        interval: Millis,
    ) -> Self {
        assert!(log_sigma >= 0.0, "log_sigma must be non-negative");
        assert!(
            (0.0..1.0).contains(&ar_coefficient),
            "ar_coefficient must be in [0,1)"
        );
        assert!(num_samples > 0, "num_samples must be positive");
        TraceGenerator {
            median,
            log_sigma,
            ar_coefficient,
            num_samples,
            interval,
        }
    }

    /// The paper's measurement protocol: 40 LTE samples at 5-minute
    /// intervals, moderately bursty around the given median.
    pub fn lte_like(median: Mbps) -> Self {
        TraceGenerator::new(median, 0.55, 0.45, 40, Millis::new(5.0 * 60_000.0))
    }

    /// Overrides the number of samples.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.num_samples = num_samples;
        self
    }

    /// Generates a trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ThroughputTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mu = self.median.get().ln();
        // Stationary AR(1) in log space.
        let mut y = mu + self.log_sigma * dist::standard_normal(&mut rng);
        let innovation_scale = self.log_sigma * (1.0 - self.ar_coefficient.powi(2)).sqrt();
        let samples = (0..self.num_samples)
            .map(|_| {
                let sample = y.exp().clamp(0.05, 200.0);
                y = mu
                    + self.ar_coefficient * (y - mu)
                    + innovation_scale * dist::standard_normal(&mut rng);
                Mbps::new(sample)
            })
            .collect();
        ThroughputTrace::new(samples, self.interval).expect("generator produces >=1 sample")
    }
}

/// Seeded Gauss–Markov (linear AR(1)) throughput generator.
///
/// Where [`TraceGenerator`] reproduces the *measured* LTE trace's bursty
/// log-normal shape, `GaussMarkov` is the fleet synthesizer: it wanders
/// around a target mean rate (a [`Region`]'s expected uplink) with
/// exponentially decaying autocorrelation,
///
/// ```text
/// x_{t+1} = mean + ar·(x_t − mean) + sigma·sqrt(1 − ar²)·N(0,1)
/// ```
///
/// clamped from below at a small positive floor so rates stay valid
/// (non-negative, and safe to divide by in the `1/t_u` cost forms).
///
/// # Examples
///
/// ```
/// use lens_nn::units::Mbps;
/// use lens_wireless::{GaussMarkov, WirelessTechnology};
///
/// let g = GaussMarkov::for_technology(Mbps::new(7.5), WirelessTechnology::Lte);
/// let trace = g.generate(3);
/// assert_eq!(trace, g.generate(3)); // deterministic per seed
/// assert!(trace.samples().iter().all(|s| s.get() > 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussMarkov {
    mean: Mbps,
    sigma: f64,
    ar_coefficient: f64,
    num_samples: usize,
    interval: Millis,
}

impl GaussMarkov {
    /// Creates a generator with explicit parameters. `sigma` is the
    /// stationary standard deviation in Mbps.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative, `ar_coefficient` is outside `[0, 1)`,
    /// or `num_samples` is zero.
    pub fn new(
        mean: Mbps,
        sigma: f64,
        ar_coefficient: f64,
        num_samples: usize,
        interval: Millis,
    ) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(
            (0.0..1.0).contains(&ar_coefficient),
            "ar_coefficient must be in [0,1)"
        );
        assert!(num_samples > 0, "num_samples must be positive");
        GaussMarkov {
            mean,
            sigma,
            ar_coefficient,
            num_samples,
            interval,
        }
    }

    /// A generator tuned to a technology's typical volatility around the
    /// given mean rate: WiFi is steady, LTE moderately bursty, 3G wild.
    /// Defaults to the paper's measurement cadence (40 samples at 5-minute
    /// intervals); override with [`with_samples`](Self::with_samples) /
    /// [`with_interval`](Self::with_interval).
    pub fn for_technology(mean: Mbps, technology: WirelessTechnology) -> Self {
        let (rel_sigma, ar) = match technology {
            WirelessTechnology::Wifi => (0.15, 0.6),
            WirelessTechnology::Lte => (0.35, 0.45),
            WirelessTechnology::ThreeG => (0.55, 0.3),
        };
        GaussMarkov::new(
            mean,
            rel_sigma * mean.get(),
            ar,
            40,
            Millis::new(5.0 * 60_000.0),
        )
    }

    /// Overrides the number of samples.
    ///
    /// # Panics
    ///
    /// Panics if `num_samples` is zero.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.num_samples = num_samples;
        self
    }

    /// Overrides the sampling interval.
    pub fn with_interval(mut self, interval: Millis) -> Self {
        self.interval = interval;
        self
    }

    /// The positive floor rates are clamped to: 1% of the mean, but at
    /// least 0.05 Mbps (the same floor the LTE generator uses).
    pub fn floor(&self) -> Mbps {
        Mbps::new((0.01 * self.mean.get()).max(0.05))
    }

    /// Generates a trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ThroughputTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = self.mean.get();
        let floor = self.floor().get();
        // Start from the stationary distribution so short traces are not
        // biased toward the mean.
        let mut x = mean + self.sigma * dist::standard_normal(&mut rng);
        let innovation_scale = self.sigma * (1.0 - self.ar_coefficient.powi(2)).sqrt();
        let samples = (0..self.num_samples)
            .map(|_| {
                let sample = x.max(floor);
                x = mean
                    + self.ar_coefficient * (x - mean)
                    + innovation_scale * dist::standard_normal(&mut rng);
                Mbps::new(sample)
            })
            .collect();
        ThroughputTrace::new(samples, self.interval).expect("generator produces >=1 sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lte_like_matches_paper_protocol() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(1);
        assert_eq!(t.len(), 40);
        assert_eq!(t.interval(), Millis::new(300_000.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = TraceGenerator::lte_like(Mbps::new(8.0));
        assert_eq!(g.generate(5), g.generate(5));
        assert_ne!(g.generate(5), g.generate(6));
    }

    #[test]
    fn median_roughly_controls_level() {
        let slow = TraceGenerator::lte_like(Mbps::new(2.0))
            .with_samples(400)
            .generate(9);
        let fast = TraceGenerator::lte_like(Mbps::new(20.0))
            .with_samples(400)
            .generate(9);
        assert!(fast.mean() > slow.mean());
    }

    #[test]
    fn csv_round_trip() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(3);
        let csv = t.to_csv();
        let parsed = ThroughputTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), t.len());
        assert_eq!(parsed.interval(), t.interval());
        for (a, b) in parsed.samples().iter().zip(t.samples()) {
            assert!((a.get() - b.get()).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let err = ThroughputTrace::from_csv("minutes,mbps\n0.0,not-a-number\n").unwrap_err();
        assert!(matches!(err, WirelessError::ParseTrace { line: 2, .. }));
        let err = ThroughputTrace::from_csv("minutes,mbps\n0.0,-3.0\n").unwrap_err();
        assert!(matches!(err, WirelessError::ParseTrace { line: 2, .. }));
        let err = ThroughputTrace::from_csv("minutes,mbps\n").unwrap_err();
        assert!(matches!(err, WirelessError::InvalidTrace(_)));
    }

    #[test]
    fn fraction_above_is_consistent() {
        let t = ThroughputTrace::new(
            vec![
                Mbps::new(1.0),
                Mbps::new(5.0),
                Mbps::new(10.0),
                Mbps::new(20.0),
            ],
            Millis::new(1000.0),
        )
        .unwrap();
        assert_eq!(t.fraction_above(Mbps::new(7.0)), 0.5);
        assert_eq!(t.fraction_above(Mbps::new(0.5)), 1.0);
        assert_eq!(t.fraction_above(Mbps::new(50.0)), 0.0);
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(
            ThroughputTrace::new(vec![], Millis::new(1.0)),
            Err(WirelessError::InvalidTrace(_))
        ));
    }

    #[test]
    fn display_summarizes() {
        let t = TraceGenerator::lte_like(Mbps::new(8.0)).generate(3);
        let s = format!("{t}");
        assert!(s.contains("40 samples"));
    }

    #[test]
    fn gauss_markov_is_deterministic_per_seed() {
        let g = GaussMarkov::for_technology(Mbps::new(7.5), WirelessTechnology::Lte);
        assert_eq!(g.generate(11), g.generate(11));
        assert_ne!(g.generate(11), g.generate(12));
    }

    #[test]
    fn gauss_markov_tracks_mean() {
        let g = GaussMarkov::for_technology(Mbps::new(16.1), WirelessTechnology::Wifi)
            .with_samples(2000);
        let t = g.generate(1);
        let m = t.mean().get();
        assert!((m - 16.1).abs() < 1.5, "mean {m} drifted from 16.1");
    }

    #[test]
    fn technology_controls_volatility() {
        let mean = Mbps::new(10.0);
        let std_of = |tech| {
            let t = GaussMarkov::for_technology(mean, tech)
                .with_samples(2000)
                .generate(4);
            let raw: Vec<f64> = t.samples().iter().map(|s| s.get()).collect();
            lens_num::stats::std_dev(&raw).unwrap()
        };
        assert!(std_of(WirelessTechnology::Wifi) < std_of(WirelessTechnology::Lte));
        assert!(std_of(WirelessTechnology::Lte) < std_of(WirelessTechnology::ThreeG));
    }

    #[test]
    fn synthesize_honours_shape_and_floor() {
        let afghanistan = Region::new("Afghanistan", Mbps::new(0.7));
        let t = ThroughputTrace::synthesize(
            &afghanistan,
            WirelessTechnology::ThreeG,
            24,
            Millis::new(60_000.0),
            5,
        );
        assert_eq!(t.len(), 24);
        assert_eq!(t.interval(), Millis::new(60_000.0));
        // 3G at 0.7 Mbps mean is wildly volatile; the floor must hold.
        for s in t.samples() {
            assert!(s.get() >= 0.05, "sample {s} below floor");
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn gauss_markov_rejects_negative_sigma() {
        GaussMarkov::new(Mbps::new(5.0), -1.0, 0.5, 10, Millis::new(1000.0));
    }

    proptest! {
        /// Every generated sample is positive and bounded; traces of any
        /// seed/median combination stay valid.
        #[test]
        fn prop_generated_traces_valid(seed in 0u64..1000, median in 0.5f64..50.0) {
            let t = TraceGenerator::lte_like(Mbps::new(median)).generate(seed);
            for s in t.samples() {
                prop_assert!(s.get() >= 0.05 && s.get() <= 200.0);
            }
        }

        /// Gauss–Markov rates are always at or above the positive floor,
        /// whatever the mean, technology, or seed.
        #[test]
        fn prop_gauss_markov_non_negative(
            seed in 0u64..500,
            mean in 0.1f64..60.0,
            tech_idx in 0usize..3,
        ) {
            let tech = WirelessTechnology::all()[tech_idx];
            let g = GaussMarkov::for_technology(Mbps::new(mean), tech).with_samples(60);
            let floor = g.floor();
            let t = g.generate(seed);
            for s in t.samples() {
                prop_assert!(*s >= floor, "sample {s} below floor {floor}");
            }
        }
    }
}
