//! Wireless communication substrate for the LENS reproduction.
//!
//! Implements the paper's §III.A cost model:
//!
//! * `L_comm = L_Tx + L_RT` (Eq. 3) — transmission plus round-trip latency,
//! * `E_comm = E_Tx` (Eq. 4) — only transmission energy is charged to the
//!   edge device,
//! * `L_Tx = Size(data)/t_u` (Eq. 5),
//! * `E_Tx = P_Tx · L_Tx` (Eq. 6),
//!
//! with the uplink power model `P_Tx = α_u·t_u + β` taken from Huang et al.,
//! ["A close examination of performance and power characteristics of 4G LTE
//! networks"](https://doi.org/10.1145/2307636.2307658) (MobiSys 2012), the
//! reference the paper cites for `P_Tx`.
//!
//! It also provides the design-time context LENS needs: per-region expected
//! uplink throughputs (Opensignal 2020, the paper's Table I source) and a
//! seeded throughput-trace generator standing in for the paper's TestMyNet
//! LTE measurements (§V.C) — see DESIGN.md substitution #3.
//!
//! For staged split-inference pipelines the crate adds a second pricing
//! surface: [`TransferModel`], a **fixed-point** (integer-microsecond)
//! transfer-cost model used by the fleet simulator to shift event arrival
//! times between pipeline stages without breaking its bit-identity
//! contract. The float link model answers "what does this uplink cost in
//! expectation?"; the transfer model answers "exactly how many microseconds
//! does this activation tensor take?" — see docs/PIPELINES.md.
//!
//! # Examples
//!
//! Price a feature-map transmission on an LTE link (Eq. 3–6), then
//! synthesize a deterministic per-device throughput trace around a
//! region's expected uplink:
//!
//! ```
//! use lens_nn::units::{Mbps, Millis};
//! use lens_nn::Bytes;
//! use lens_wireless::{Region, ThroughputTrace, WirelessLink, WirelessTechnology};
//!
//! let link = WirelessLink::new(WirelessTechnology::Lte, Mbps::new(7.5));
//! let latency = link.comm_latency(Bytes::new(150_528)); // AlexNet input
//! let energy = link.comm_energy(Bytes::new(150_528));
//! assert!(latency.get() > 0.0 && energy.get() > 0.0);
//!
//! // Gauss–Markov trace, 60 samples at 60 s — same seed, same trace.
//! let usa = Region::new("USA", Mbps::new(7.5));
//! let trace =
//!     ThroughputTrace::synthesize(&usa, WirelessTechnology::Lte, 60, Millis::new(60_000.0), 42);
//! let again =
//!     ThroughputTrace::synthesize(&usa, WirelessTechnology::Lte, 60, Millis::new(60_000.0), 42);
//! assert_eq!(trace.samples(), again.samples());
//! ```
//!
//! Price an inter-stage activation transfer in exact integer microseconds —
//! link quality moves the cost, and therefore the optimal split point:
//!
//! ```
//! use lens_nn::units::Mbps;
//! use lens_wireless::TransferModel;
//!
//! let poor = TransferModel::new(Mbps::new(0.7)); // Afghanistan, Table I
//! let good = TransferModel::new(Mbps::new(16.1)); // S. Korea, Table I
//! let activation = 86_528; // bytes at a mid-network cut
//! assert!(poor.cost_us(activation) > good.cost_us(activation));
//! assert_eq!(poor.cost_us(activation), poor.cost_us(activation)); // fixed-point
//! ```

#![forbid(unsafe_code)]

pub mod link;
pub mod region;
pub mod technology;
pub mod trace;
pub mod transfer;

pub use link::WirelessLink;
pub use region::Region;
pub use technology::{UplinkPowerModel, WirelessTechnology};
pub use trace::{GaussMarkov, ThroughputTrace, TraceGenerator};
pub use transfer::TransferModel;

use std::error::Error;
use std::fmt;

/// Errors produced by the wireless substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// A throughput trace was empty or otherwise malformed.
    InvalidTrace(String),
    /// Failed to parse a trace from CSV text.
    ParseTrace {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::InvalidTrace(why) => write!(f, "invalid trace: {why}"),
            WirelessError::ParseTrace { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for WirelessError {}
