//! Adapting LENS to a different search space and a *real* trainer.
//!
//! §IV.B: "Although LENS can be adapted to any search space, we demonstrate
//! its merit through an experimental search space derived from VGG16." This
//! example does the adaptation: a small LeNet-style space (two conv blocks,
//! one FC) is defined from scratch against the [`SearchSpace`] trait, and
//! the accuracy objective is evaluated by actually *training each sampled
//! CNN* (`CnnTrainedAccuracy`, a from-scratch conv/pool/dense
//! backpropagation loop) instead of the CIFAR-10 surrogate — the paper's
//! "each sampled architectural model is trained for 10 epochs", scaled to
//! laptop seconds.
//!
//! ```sh
//! cargo run --release -p lens --example custom_search_space
//! ```

use lens::prelude::*;
use lens::space::SpaceError;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// A tiny LeNet-ish space: 2 conv blocks (filters ∈ {8,16,32}, kernel ∈
/// {3,5}) each followed by a mandatory pool, plus one FC ∈ {32,64,128}.
#[derive(Debug, Clone)]
struct LenetSpace {
    input: TensorShape,
    dims: Vec<usize>,
}

impl LenetSpace {
    const FILTERS: [u32; 3] = [8, 16, 32];
    const KERNELS: [u32; 2] = [3, 5];
    const FC: [u32; 3] = [32, 64, 128];

    fn new(input: TensorShape) -> Self {
        // Genes: [b1 filters, b1 kernel, b2 filters, b2 kernel, fc width].
        LenetSpace {
            input,
            dims: vec![3, 2, 3, 2, 3],
        }
    }
}

impl SearchSpace for LenetSpace {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> &str {
        "lenet-space"
    }

    fn is_valid(&self, encoding: &Encoding) -> bool {
        encoding.check_dims(&self.dims).is_ok()
    }

    fn decode(&self, encoding: &Encoding) -> Result<Network, SpaceError> {
        encoding.check_dims(&self.dims)?;
        let g = encoding.genes();
        let net = NetworkBuilder::new("lenet-candidate", self.input)
            .layer(lens::nn::Layer::conv(
                "conv1",
                Self::FILTERS[g[0]],
                Self::KERNELS[g[1]],
                Self::KERNELS[g[1]] / 2,
            ))
            .layer(lens::nn::Layer::max_pool2("pool1"))
            .layer(lens::nn::Layer::conv(
                "conv2",
                Self::FILTERS[g[2]],
                Self::KERNELS[g[3]],
                Self::KERNELS[g[3]] / 2,
            ))
            .layer(lens::nn::Layer::max_pool2("pool2"))
            .flatten()
            .layer(lens::nn::Layer::dense("fc1", Self::FC[g[4]]))
            .layer(lens::nn::Layer::new(
                "classifier",
                lens::nn::LayerKind::Dense {
                    out_features: 10,
                    activation: lens::nn::Activation::Softmax,
                },
            ))
            .build()?;
        Ok(net)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Encoding {
        self.dims.iter().map(|&c| rng.gen_range(0..c)).collect()
    }

    fn mutate(&self, encoding: &Encoding, rng: &mut dyn RngCore) -> Encoding {
        let mut out = encoding.clone();
        let pos = rng.gen_range(0..self.dims.len());
        out.genes_mut()[pos] = rng.gen_range(0..self.dims[pos]);
        out
    }
}

fn main() -> Result<(), LensError> {
    // Deployment view: QVGA-ish camera frames; training view: 32x32.
    let deploy = Arc::new(LenetSpace::new(TensorShape::new(3, 224, 224)));
    let train = Arc::new(LenetSpace::new(TensorShape::new(3, 32, 32)));

    // Real training: every candidate CNN is trained for 3 epochs on a
    // procedurally generated image dataset (see lens_accuracy::cnn docs).
    let estimator =
        Arc::new(lens::accuracy::CnnTrainedAccuracy::new(1234, 1).with_dataset_size(6, 4));

    let lens = Lens::builder()
        .spaces(deploy, train)
        .accuracy_estimator(estimator)
        .technology(WirelessTechnology::ThreeG) // constrained backhaul
        .expected_throughput(Mbps::new(1.5))
        .device(DeviceProfile::jetson_tx2_cpu())
        .iterations(12)
        .initial_samples(6)
        .seed(7)
        .build()?;

    println!("searching the custom LeNet space, really training each candidate CNN...");
    let outcome = lens.search()?;

    println!("\nPareto frontier:");
    for c in outcome.pareto_candidates() {
        println!(
            "  {}: {} (latency via {}, energy via {})",
            c.encoding, c.objectives, c.best_latency_option, c.best_energy_option
        );
    }
    println!(
        "\nLENS ran unmodified on a user-defined space and a genuine CNN training loop — \
         the search only ever sees the SearchSpace and AccuracyEstimator traits. \
         (Swap in `TrainedAccuracy` for MLP-only training, or \
         `SurrogateAccuracy::cifar10()` for the paper-scale experiments.)"
    );
    Ok(())
}
