//! Quickstart: run a small LENS search and inspect its Pareto frontier.
//!
//! ```sh
//! cargo run --release -p lens --example quickstart
//! ```
//!
//! This mirrors the Fig 3 flow: specify the wireless technology and the
//! expected conditions, run the multi-objective search, and receive a
//! Pareto-optimal set of architectures — each annotated with its best
//! deployment option.

use lens::prelude::*;

fn main() -> Result<(), LensError> {
    // Design-time inputs (Fig 3): radio, expected t_u, target device.
    // 30 iterations keeps the example snappy; the paper runs 300.
    let lens = Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .iterations(30)
        .initial_samples(10)
        .seed(2021)
        .build()?;

    println!("running LENS (10 random + 30 MOBO iterations)...");
    let outcome = lens.search()?;

    println!(
        "\nexplored {} architectures; Pareto frontier has {} members:\n",
        outcome.explored().len(),
        outcome.pareto_front().len()
    );
    println!(
        "{:>5}  {:>8}  {:>10}  {:>10}  {:<14} {:<14}",
        "idx", "err (%)", "lat (ms)", "E (mJ)", "best-latency", "best-energy"
    );
    for c in outcome.pareto_candidates() {
        println!(
            "{:>5}  {:>8.2}  {:>10.1}  {:>10.1}  {:<14} {:<14}",
            c.index,
            c.objectives.error_pct,
            c.objectives.latency_ms,
            c.objectives.energy_mj,
            c.best_latency_option.to_string(),
            c.best_energy_option.to_string(),
        );
    }

    // How many frontier members actually exploit the edge-cloud hierarchy?
    let distributed = outcome
        .pareto_candidates()
        .iter()
        .filter(|c| {
            c.best_latency_option != DeploymentKind::AllEdge
                || c.best_energy_option != DeploymentKind::AllEdge
        })
        .count();
    println!(
        "\n{distributed} of {} frontier members prefer a distributed deployment — \
         the opportunities the Traditional (edge-only) search cannot see.",
        outcome.pareto_front().len()
    );
    Ok(())
}
