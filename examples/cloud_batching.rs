//! Batched, multi-backend cloud serving: sweeping the batcher's linger
//! window against aggregate energy·delay under congestion.
//!
//! The fleet's cloud tier is no longer one fluid queue per region — each
//! region hosts a GPU pool and a CPU pool with different service-rate
//! curves, each behind a dynamic batcher (`max_batch` + `linger_ms`, with
//! an affine batch cost so larger batches amortize the fixed part) and an
//! admission controller that sheds to a sibling region or back to the
//! device. This example shows three things:
//!
//! 1. **Batching beats unbatched serving under congestion** — the linger
//!    sweep reduces aggregate energy·delay by an order of magnitude
//!    because amortized batches drain the backlog a per-request server
//!    cannot.
//! 2. **Admission control bounds the damage when capacity is hopeless** —
//!    deadline shedding with sibling failover reroutes or re-localizes
//!    overload, with per-region shed/failover counts in the report.
//! 3. **Determinism survives the serving tier** — the same seed and shard
//!    count reproduce the batched run bit-for-bit.
//!
//! ```sh
//! cargo run --release -p lens --example cloud_batching
//! ```

use lens::prelude::*;
use std::time::Instant;

const POPULATION: usize = 20_000;
const SHARDS_CAP: usize = 8;

/// A GPU pool (few slots, large fixed cost, tiny marginal cost — the
/// batching win) plus a CPU pool (more slots, flatter curve). With
/// `max_batch = 1` both degrade to per-request serving whose aggregate
/// drain sits *below* the busiest regions' offload demand — that is the
/// congestion axis the sweep explores.
fn serving(max_batch_gpu: usize, max_batch_cpu: usize, linger_ms: f64) -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 2, 50.0, 0.25).with_batching(max_batch_gpu, linger_ms),
        BackendConfig::new("cpu", 8, 40.0, 40.0).with_batching(max_batch_cpu, linger_ms),
    ])
}

fn scenario(serving: CloudServing, shards: usize) -> FleetScenario {
    FleetScenario::builder()
        .population(POPULATION)
        .horizon(Millis::new(1_800_000.0)) // 30 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(2024)
        .shards(shards)
        .build()
        .expect("valid scenario")
}

fn run(serving: CloudServing, shards: usize) -> FleetReport {
    FleetEngine::new(scenario(serving, shards))
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = std::thread::available_parallelism()
        .map(|n| n.get().min(SHARDS_CAP))
        .unwrap_or(1);
    let start = Instant::now();
    println!("== cloud batching: {POPULATION} devices, {shards} shard(s) ==\n");

    // 1. The linger sweep: unbatched serving first, then growing linger
    // windows. Energy·delay = total edge energy (mJ) × mean end-to-end
    // latency (ms); the energy-dynamic fleet keeps offloading either way,
    // so the queue wait is what moves the product.
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>14}",
        "serving", "mean ms", "p99 ms", "total J", "energy*delay"
    );
    let unbatched = run(serving(1, 1, 0.0), shards);
    let print_row = |label: &str, r: &FleetReport| {
        println!(
            "{label:<22} {:>12.1} {:>10.1} {:>10.1} {:>14.3e}",
            r.latency().mean(),
            r.latency().percentile(99.0),
            r.total_energy_mj() / 1000.0,
            r.energy_delay(),
        );
    };
    print_row("unbatched", &unbatched);
    let mut best: Option<(f64, FleetReport)> = None;
    for linger_ms in [0.0, 100.0, 400.0, 1600.0] {
        let report = run(serving(64, 8, linger_ms), shards);
        print_row(&format!("batched, linger {linger_ms:>5}"), &report);
        if best
            .as_ref()
            .is_none_or(|(_, b)| report.energy_delay() < b.energy_delay())
        {
            best = Some((linger_ms, report));
        }
    }
    let (best_linger, batched) = best.expect("sweep ran");
    println!(
        "\nbest linger {best_linger} ms: energy*delay {:.3e} vs unbatched {:.3e} ({:.0}x lower)",
        batched.energy_delay(),
        unbatched.energy_delay(),
        unbatched.energy_delay() / batched.energy_delay()
    );
    assert!(
        batched.energy_delay() < unbatched.energy_delay(),
        "batching must reduce aggregate energy-delay under congestion"
    );

    // Per-backend view of the winning configuration: the GPU pool closes
    // large amortized batches, the CPU pool mops up the rest.
    println!("\nper-backend serving stats (best batched config):");
    println!(
        "  {:<14} {:<8} {:>10} {:>9} {:>11} {:>7}",
        "region", "backend", "jobs", "batches", "mean batch", "util"
    );
    for b in batched.backends() {
        println!(
            "  {:<14} {:<8} {:>10.0} {:>9.0} {:>11.1} {:>6.1}%",
            b.region,
            b.backend,
            b.served_jobs,
            b.batches,
            b.mean_batch(),
            100.0 * b.utilization
        );
    }

    // 2. Admission control on a hopeless (unbatched) tier: deadline
    // shedding with sibling failover bounds latency; shed requests run
    // the device's local-only option, failovers spill into the least
    // loaded sibling region.
    println!("\n== admission control on the unbatched tier ==");
    let guarded = run(
        serving(1, 1, 0.0)
            .with_admission(AdmissionPolicy::Deadline {
                max_wait_ms: 2_000.0,
            })
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 }),
        shards,
    );
    println!(
        "open admission:     mean {:>8.1} ms   (0 shed, 0 failed over)",
        unbatched.latency().mean()
    );
    println!(
        "deadline + failover: mean {:>8.1} ms   ({} shed to local, {} failed over)",
        guarded.latency().mean(),
        guarded.shed_to_local(),
        guarded.failed_over()
    );
    for r in guarded.regions() {
        println!(
            "  {:<14} {:>7} shed, {:>7} failed over, {:>7} absorbed from siblings",
            r.region, r.shed_to_local, r.failed_over, r.failover_in
        );
    }
    assert!(guarded.shed_to_local() + guarded.failed_over() > 0);
    assert!(
        guarded.latency().mean() < unbatched.latency().mean(),
        "admission control must bound mean latency on a congested tier"
    );

    // 3. Determinism: the batched run reproduces bit-for-bit.
    let again = run(serving(64, 8, best_linger), shards);
    assert_eq!(batched, again, "determinism contract violated");
    println!(
        "\nrepeat-run digest {:#018x} == first-run digest {:#018x}",
        again.digest(),
        batched.digest()
    );

    println!("total example time {:.2?}", start.elapsed());
    Ok(())
}
