//! Load vs. tail latency under the per-request cloud microsimulation.
//!
//! The fluid serving tier (PR 3) resolves whole epochs of offloads as
//! aggregate quantities, so every request of an epoch sees the same
//! published wait — means are right, but there is no credible p95/p99
//! story. The `CloudSimFidelity::PerRequest` mode replays each offloaded
//! request as its own discrete event (arrival → queueing → batch
//! admission → service → completion), which is exactly what
//! post-deployment adaptation needs to act on. This example shows:
//!
//! 1. **The load → p99 curve** — sweeping the fleet population against a
//!    fixed serving tier, per-request tails stretch long before the mean
//!    moves: the p99/p50 ratio is the congestion early-warning the fluid
//!    model cannot see.
//! 2. **Where fluid and discrete part ways** — identical device decisions
//!    mean bit-equal energy, and in the stable regime the means stay
//!    close; but near saturation the fluid batch-size estimate
//!    under-predicts amortization (it only grows batches from carried
//!    backlog and linger fill), so it over-predicts congestion — the
//!    discrete queue shows the tier actually keeping up at ~97%
//!    utilization, with the truth in the tails.
//! 3. **Determinism survives the microsim** — the same seed and shard
//!    count reproduce the per-request run bit-for-bit.
//!
//! ```sh
//! cargo run --release -p lens --example tail_latency
//! ```

use lens::prelude::*;
use std::time::Instant;

/// A batched GPU pool: 2 slots, 150 ms fixed + 5 ms/item, batches of up
/// to 8 closing after 50 ms of linger. Single-item drain ≈ 774 jobs/min;
/// full batches push that toward ~5 000/min, so the population sweep
/// crosses from idle through amortized batching into saturation.
fn serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 2, 150.0, 5.0).with_batching(8, 50.0)
    ])
}

fn scenario(population: usize, fidelity: CloudSimFidelity) -> FleetScenario {
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // 10 minutes, 60 s epochs
        .trace_interval(Millis::new(60_000.0))
        .regions(vec![RegionShare::new(
            Region::new("USA", Mbps::new(7.5)),
            1.0,
        )])
        .serving(serving())
        .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
        .metric(Metric::Latency)
        .seed(77)
        .shards(2)
        .fidelity(fidelity)
        .build()
        .expect("valid scenario")
}

fn run(population: usize, fidelity: CloudSimFidelity) -> FleetReport {
    FleetEngine::new(scenario(population, fidelity))
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    println!("== load vs tail latency: per-request cloud microsimulation ==\n");

    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "devices", "fluid mean", "pr mean", "p50", "p90", "p95", "p99", "p99/p50"
    );
    let mut tails = Vec::new();
    for population in [200usize, 400, 800, 1600, 3200] {
        let fluid = run(population, CloudSimFidelity::Fluid);
        let discrete = run(population, CloudSimFidelity::PerRequest);

        // Identical decisions: offload counts and energy agree exactly,
        // and only the per-request run has a cloud-sojourn story.
        assert_eq!(fluid.offloaded(), discrete.offloaded());
        assert_eq!(fluid.total_energy_mj(), discrete.total_energy_mj());
        assert!(fluid.cloud_sojourn().iter().all(|h| h.count() == 0));
        assert_eq!(discrete.cloud_sojourn()[0].count(), discrete.offloaded());

        let tail = discrete.region_tail(0);
        assert!(tail.is_monotone(), "percentiles must be monotone: {tail:?}");
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.2}",
            population,
            fluid.latency().mean(),
            discrete.latency().mean(),
            tail.p50,
            tail.p90,
            tail.p95,
            tail.p99,
            tail.p99 / tail.p50.max(1e-9),
        );
        tails.push((population, fluid.latency().mean(), discrete));
    }

    let (_, _, ref lightest) = tails[0];
    let (_, heaviest_fluid_mean, ref heaviest) = tails[tails.len() - 1];
    assert!(
        heaviest.region_tail(0).p99 > lightest.region_tail(0).p99,
        "p99 must grow with load"
    );
    // Near saturation the discrete queue closes full batches off the
    // backlog and keeps up where the fluid estimate diverges.
    assert!(
        heaviest.latency().mean() < heaviest_fluid_mean,
        "per-request batching fidelity should beat the fluid estimate at saturation"
    );

    // Per-backend view at the heaviest load: batch amortization in
    // action, with the exact per-request sojourn tail alongside.
    println!("\nper-backend serving stats at the heaviest load:");
    for b in heaviest.backends() {
        println!(
            "  {}/{}: {:.0} requests in {:.0} batches (mean {:.1}/batch), {:.1}% util, sojourn {}",
            b.region,
            b.backend,
            b.served_jobs,
            b.batches,
            b.mean_batch(),
            100.0 * b.utilization,
            b.tail(),
        );
    }

    // Determinism: the per-request run reproduces bit-for-bit.
    let again = run(3200, CloudSimFidelity::PerRequest);
    assert_eq!(*heaviest, again, "determinism contract violated");
    println!(
        "\nrepeat-run digest {:#018x} == first-run digest {:#018x}",
        again.digest(),
        heaviest.digest()
    );

    println!("total example time {:.2?}", start.elapsed());
    Ok(())
}
