//! The closed tail-latency loop, end to end, in one run.
//!
//! A flash crowd hits a deliberately small region tier and every stage of
//! the loop fires in sequence:
//!
//! 1. **Crowd hits** — a [`WorkloadCurve::flash_crowd`] holds offload
//!    intent at 30% until minute 6, jumps to 100% for 5 minutes, then
//!    falls back. The curve gates each device's offload draw inside one
//!    run — no per-hour re-simulation.
//! 2. **p99 spikes** — the per-request microsim measures real queueing,
//!    and the epoch-windowed p99 blows past the autoscaler's 4 s tail
//!    target.
//! 3. **Tier scales on tail** — a [`ScalingSignal::TailLatency`]
//!    autoscaler steps the pool up at the drain → scale → publish
//!    barrier.
//! 4. **Devices retreat** — the published [`RegionSignal::p99_ms`]
//!    exceeds the scenario's 6 s tail deadline, so devices retreat
//!    offload-bound requests to their local-only option (re-probing with
//!    a deterministic 1-in-16 hash draw).
//! 5. **Tail recovers** — added slots plus retreating devices pull the
//!    tail back under budget; retreats stop *while the crowd is still
//!    on*, and the pool walks back down once it passes.
//!
//! The whole loop is deterministic: the report digest is bit-identical
//! at 1, 2, and 4 shards.
//!
//! ```sh
//! cargo run --release -p lens --example flash_crowd
//! ```
//!
//! [`RegionSignal::p99_ms`]: lens::fleet::RegionSignal

use lens::prelude::*;
use std::time::Instant;

/// One barrier epoch (µs of simulated time).
const EPOCH_US: u64 = 60_000_000;
/// Epochs in the run (20 simulated minutes).
const EPOCHS: usize = 20;
/// The crowd arrives at minute 6 and stays for 5 minutes.
const CROWD_START_MS: f64 = 360_000.0;
const CROWD_DURATION_MS: f64 = 300_000.0;
/// The autoscaler's p99 sojourn target (a full batch costs ~1.1 s, so a
/// 4 s tail means real queueing, not service time).
const TAIL_TARGET_US: u64 = 4_000_000;
/// The device-side tail deadline budget.
const DEADLINE_MS: f64 = 6_000.0;

fn crowd_curve() -> WorkloadCurve {
    WorkloadCurve::flash_crowd(Millis::new(CROWD_START_MS), Millis::new(CROWD_DURATION_MS))
}

fn scenario(shards: usize) -> FleetScenario {
    // One slot drains ≈ 440 jobs/min (batch of 8 = 1.08 s), so the 30%
    // baseline (~250 offloads/min) runs quietly on the single slot while
    // the 100% crowd (~800/min) overwhelms it until the pool scales.
    let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 1000.0, 10.0)
        .with_batching(8, 250.0)
        .with_autoscaler(
            Autoscaler::new(
                ScalingSignal::TailLatency {
                    target_us: TAIL_TARGET_US,
                },
                1.0,
                0.5,
                1,
                4,
            )
            .with_alpha(0.6)
            .with_cooldown(1),
        )]);
    FleetScenario::builder()
        .population(1200)
        .horizon(Millis::new(EPOCHS as f64 * 60_000.0))
        .trace_interval(Millis::new(60_000.0))
        .regions(vec![RegionShare::new(
            Region::new("USA", Mbps::new(7.5)),
            1.0,
        )])
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Latency)
        .seed(11)
        .shards(shards)
        .fidelity(CloudSimFidelity::PerRequest)
        .workload(crowd_curve())
        .tail_deadline(Millis::new(DEADLINE_MS))
        .build()
        .expect("valid scenario")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    println!("== flash crowd: the closed tail-latency loop in one run ==\n");
    let (report, telemetry) = FleetEngine::new(scenario(2))?.run_traced()?;

    // Bucket the flight-recorder trace by epoch: device retreats and
    // barrier scaling steps tell the loop's story epoch by epoch.
    let mut retreats = vec![0u64; EPOCHS];
    let mut scale_steps: Vec<Vec<String>> = vec![Vec::new(); EPOCHS];
    for event in telemetry.recorder.events() {
        let epoch = ((event.time_us() / EPOCH_US) as usize).min(EPOCHS - 1);
        match *event {
            TraceEvent::Retreat { .. } => retreats[epoch] += 1,
            TraceEvent::ScalingStep {
                from_slots,
                to_slots,
                ..
            } => scale_steps[epoch].push(format!("{from_slots}→{to_slots}")),
            _ => {}
        }
    }

    let curve = crowd_curve();
    let slots = &report.backends()[0].slot_timeline;
    println!(
        "{:>5} {:>8} {:>6} {:>9}  scaling",
        "epoch", "intent%", "slots", "retreats"
    );
    for epoch in 0..EPOCHS {
        let multiplier_fp = curve.multiplier_fp(epoch as u64 * EPOCH_US, 0);
        println!(
            "{:>5} {:>7.1}% {:>6} {:>9}  {}",
            epoch,
            multiplier_fp as f64 / 10_000.0,
            slots[epoch],
            retreats[epoch],
            if scale_steps[epoch].is_empty() {
                "-".to_string()
            } else {
                scale_steps[epoch].join(", ")
            },
        );
    }

    // The loop actually closed, stage by stage.
    let crowd_epochs = 6..11usize;
    let crowd_retreats: u64 = crowd_epochs.clone().map(|e| retreats[e]).sum();
    let tail_retreats: u64 = retreats[EPOCHS - 3..].iter().sum();
    assert!(
        report.scaling_events() > 0 && slots.iter().max() > slots.iter().min(),
        "the tail-latency autoscaler must step the pool"
    );
    assert!(
        report.retreated() > 0 && crowd_retreats > 0,
        "the blown tail must push devices to retreat during the crowd"
    );
    assert_eq!(
        tail_retreats, 0,
        "the tail must recover once the crowd passes: retreats linger {retreats:?}"
    );
    assert!(
        telemetry
            .recorder
            .events()
            .any(|e| e.kind() == "curve_phase"),
        "curve plateau changes must be traced"
    );
    println!(
        "\ncrowd window (epochs {}-{}): {} retreats; whole run: {} retreats, {} scaling events, {} offloaded, {} shed",
        crowd_epochs.start,
        crowd_epochs.end - 1,
        crowd_retreats,
        report.retreated(),
        report.scaling_events(),
        report.offloaded(),
        report.shed_to_local(),
    );

    // Bit-identity: the same closed loop at 1 and 4 shards produces the
    // same report, digest and all (run() vs run_traced() agree too).
    let one = FleetEngine::new(scenario(1))?.run()?;
    let four = FleetEngine::new(scenario(4))?.run()?;
    assert_eq!(one.digest(), report.digest(), "1-shard digest differs");
    assert_eq!(four.digest(), report.digest(), "4-shard digest differs");
    println!(
        "digest {:#018x} bit-identical at 1/2/4 shards",
        report.digest()
    );

    println!("total example time {:.2?}", start.elapsed());
    Ok(())
}
