//! A million devices, a full day, in minutes.
//!
//! The flagship scale run behind the parallel-barrier/SoA engine work:
//! a 24-hour horizon at one inference per device per minute — 1 440
//! inference events per device — replayed in both cloud fidelities on
//! the same scenario:
//!
//! 1. **Fluid** — the closed-form tier, the per-event cost floor.
//! 2. **Per-request** — every offload individually queued, batched, and
//!    drained through the region microsims, holding within a small
//!    multiple of the fluid cost per event.
//!
//! Both runs print wall-clock, per-event cost, and the report digest —
//! re-running with the same population and seed must reproduce the
//! digests bit-for-bit whatever the shard count, replay mode, or host.
//!
//! The default population is 100 000 (the scale CI smoke-runs on every
//! push); set `LENS_MILLION_FLEET_POP=1000000` for the full million.
//!
//! ```sh
//! LENS_MILLION_FLEET_POP=1000000 \
//!     cargo run --release -p lens --example million_fleet
//! ```

use lens::prelude::*;
use std::time::Instant;

/// The day-long scenario: 600 s epochs (144 barriers), one inference
/// per device per minute, and a two-backend batched tier whose slot
/// counts scale with the population so the cloud stays loaded — but not
/// degenerate — at every scale.
fn scenario(population: usize, shards: usize, fidelity: CloudSimFidelity) -> FleetScenario {
    let scale = (population / 10_000).max(1);
    let serving = CloudServing::new(vec![
        BackendConfig::new("gpu", 2 * scale, 50.0, 0.25).with_batching(64, 100.0),
        BackendConfig::new("cpu", 8 * scale, 40.0, 40.0).with_batching(8, 100.0),
    ])
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 2_000.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 });
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(86_400_000.0)) // 24 hours
        .trace_interval(Millis::new(600_000.0)) // 144 epochs
        .arrival(ArrivalModel::Periodic {
            period: Millis::new(60_000.0),
        })
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .shards(shards)
        .fidelity(fidelity)
        .replay(ReplayMode::Auto)
        .build()
        .expect("valid scenario")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population: usize = std::env::var("LENS_MILLION_FLEET_POP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== million-fleet day ({population} devices, {shards} shard(s)) ==\n");

    let mut fluid_ns_per_event = 0.0;
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let engine = FleetEngine::new(scenario(population, shards, fidelity))?;
        let events = engine.scenario().expected_events() as f64;
        let profile = std::env::var("LENS_MILLION_FLEET_PROFILE").is_ok();
        let start = Instant::now();
        let report = if profile {
            let (report, telemetry) = engine.run_traced()?;
            let total = telemetry.profile.total();
            println!(
                "profile: {} timer pops, {} heap ops, {} records merged, {} batches",
                total.events_popped, total.heap_ops, total.records_merged, total.batches_closed
            );
            report
        } else {
            engine.run()?
        };
        let elapsed = start.elapsed();
        let ns_per_event = elapsed.as_nanos() as f64 / events;
        println!(
            "{fidelity:?}: {} inferences in {elapsed:.2?}  ({ns_per_event:.0} ns/event)",
            report.inferences()
        );
        println!(
            "  offloaded {}  shed-to-local {}  p99 latency {:.1} ms  digest {:#018x}",
            report.offloaded(),
            report.shed_to_local(),
            report.latency().percentile(99.0),
            report.digest()
        );
        match fidelity {
            CloudSimFidelity::Fluid => fluid_ns_per_event = ns_per_event,
            CloudSimFidelity::PerRequest => {
                // The tentpole contract: exact per-request queueing stays
                // within a small constant of the closed-form tier.
                let ratio = ns_per_event / fluid_ns_per_event;
                println!("  per-request / fluid cost ratio {ratio:.2}x");
            }
        }
        println!();
    }
    Ok(())
}
