//! Recording a congested autoscaled run with the deterministic flight
//! recorder.
//!
//! The fleet simulator's only output used to be the final `FleetReport` —
//! a run was a black box between `run()` and its aggregates. This example
//! exercises the observability layer (`lens-telemetry`) end to end:
//!
//! 1. **Flight recording** — an under-provisioned, autoscaled, batched
//!    tier under per-request fidelity, run through
//!    [`FleetEngine::run_traced`]: every dispatch, shed, failover, batch
//!    close, scaling step, and barrier phase transition lands in a
//!    bounded sim-time event ring.
//! 2. **Per-epoch metrics timelines** — queue depth, shed fraction, live
//!    slots, and the cumulative p99 per region, sampled at every epoch
//!    barrier in fixed point.
//! 3. **Engine profiling** — deterministic work counters per barrier
//!    phase (events popped, heap ops, records merged, batches closed):
//!    the parallel-rewrite baseline, with no clock anywhere.
//! 4. **Exports** — the run is dumped as `lens-telemetry-v1` JSON and as
//!    Chrome `trace_event` JSON under `target/flight_recorder/`; the
//!    latter opens directly in `about://tracing` or Perfetto.
//!
//! Everything printed here is keyed to *simulation* time, so the output
//! is bit-identical run to run and across shard counts.
//!
//! ```sh
//! cargo run --release -p lens --example flight_recorder
//! ```

use lens::prelude::*;
use std::fs;

/// A deliberately congested autoscaled tier: a small priced GPU pool and
/// a cheap CPU pool, both autoscaled, behind deadline admission with
/// sibling-region failover.
fn congested_serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 1, 100.0, 10.0)
            .with_batching(8, 50.0)
            .with_price(4.0)
            .with_energy(2.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.6, 0.2, 1, 6).with_step(2),
            ),
        BackendConfig::new("cpu", 1, 80.0, 40.0)
            .with_batching(4, 50.0)
            .with_price(1.0)
            .with_energy(1.0)
            .with_autoscaler(Autoscaler::new(ScalingSignal::QueueDepth, 4.0, 0.5, 1, 10)),
    ])
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 1_500.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 })
    .with_dispatch(DispatchPolicy::CostAware)
}

fn main() {
    // ~4k devices against ~3 starting slots per region: the opening
    // epochs shed and fail over hard, then the autoscalers catch up —
    // exactly the "flash crowd → scale-up → retreat" arc the closed-loop
    // work needs to see.
    let scenario = FleetScenario::builder()
        .population(12_000)
        .horizon(Millis::new(900_000.0)) // 15 minutes, 60 s epochs
        .serving(congested_serving())
        .fidelity(CloudSimFidelity::PerRequest)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(23)
        .shards(2)
        .telemetry(TelemetryConfig::default().with_event_capacity(200_000))
        .build()
        .expect("valid scenario");

    let engine = FleetEngine::new(scenario).expect("engine builds");
    let (report, telemetry) = engine.run_traced().expect("traced run");

    println!("=== flight_recorder: a traced congested autoscaled run ===");
    println!();
    println!(
        "fleet: {} inferences, {:.1}% shed, {} failovers, {} scaling steps, report digest {:#018x}",
        report.inferences(),
        report.shed_to_local() as f64 / report.inferences() as f64 * 100.0,
        report.failed_over(),
        report.scaling_events(),
        report.digest(),
    );

    // --- 1. the event ring -------------------------------------------
    let recorder = &telemetry.recorder;
    println!();
    println!(
        "trace: {} events recorded ({} retained, {} evicted), digest {:#018x}",
        recorder.recorded(),
        recorder.len(),
        recorder.dropped(),
        telemetry.trace_digest(),
    );
    let mut by_kind: Vec<(&str, u64)> = Vec::new();
    for event in recorder.events() {
        match by_kind.iter_mut().find(|(k, _)| *k == event.kind()) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((event.kind(), 1)),
        }
    }
    for (kind, count) in &by_kind {
        println!("  {kind:<14} {count}");
    }

    // --- 2. metrics timelines ----------------------------------------
    println!();
    println!(
        "metrics: {} series × {} epochs, digest {:#018x}",
        telemetry.metrics.len(),
        telemetry.profile.epochs(),
        telemetry.metrics_digest(),
    );
    for (name, points) in telemetry.metrics.iter().take(4) {
        let last = points.last().copied().unwrap_or(0);
        println!(
            "  {name:<28} {} samples, final {}.{:06}",
            points.len(),
            last / 1_000_000,
            last.unsigned_abs() % 1_000_000,
        );
    }

    // --- 3. the per-phase work profile -------------------------------
    println!();
    println!("profile ({} epochs):", telemetry.profile.epochs());
    println!(
        "  {:<12} {:>12} {:>12} {:>14} {:>14}",
        "phase", "events_pop", "heap_ops", "records_merged", "batches_closed"
    );
    for phase in BarrierPhase::ALL {
        let c = telemetry.profile.phase(phase);
        println!(
            "  {:<12} {:>12} {:>12} {:>14} {:>14}",
            phase.name(),
            c.events_popped,
            c.heap_ops,
            c.records_merged,
            c.batches_closed
        );
    }

    // --- 4. exports ---------------------------------------------------
    let dir = "target/flight_recorder";
    fs::create_dir_all(dir).expect("create export dir");
    let json = telemetry.to_json();
    let chrome = telemetry.to_chrome_trace();
    fs::write(format!("{dir}/metrics.json"), &json).expect("write metrics.json");
    fs::write(format!("{dir}/trace.json"), &chrome).expect("write trace.json");
    println!();
    println!(
        "exports: {dir}/metrics.json ({} bytes), {dir}/trace.json ({} bytes — open in about://tracing or Perfetto)",
        json.len(),
        chrome.len(),
    );

    // The recorder observes without perturbing: the untraced run's report
    // digest must match bit for bit.
    let untraced = engine.run().expect("untraced run");
    assert_eq!(
        untraced.digest(),
        report.digest(),
        "telemetry must not perturb the run"
    );
    println!();
    println!("determinism: untraced report digest matches the traced run bit for bit");
}
