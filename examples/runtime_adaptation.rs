//! Runtime adaptation (Fig 5 + Fig 8): deploy a model with its design-time
//! best option, then let the online throughput tracker switch between
//! deployment options as the LTE uplink fluctuates.
//!
//! ```sh
//! cargo run --release -p lens --example runtime_adaptation
//! ```

use lens::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The deployed model: AlexNet on the TX2 CPU over LTE (the scenario
    // with the richest switching structure in Table I).
    let analysis = zoo::alexnet().analyze()?;
    let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
    let planner =
        DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(8.0)));
    let options = planner.enumerate(&analysis, &perf)?;

    // Design-time analysis: the t_u intervals where each option dominates.
    let map = DominanceMap::build(&options, Metric::Latency)?;
    println!("{map}");
    for (i, o) in options.iter().enumerate() {
        println!("  option {i}: {o}");
    }

    // A measured-looking LTE trace (synthetic stand-in for TestMyNet;
    // 40 samples at 5-minute intervals, as in §V.C).
    let trace = TraceGenerator::lte_like(Mbps::new(9.0)).generate(77);
    println!("\nreplaying: {trace}\n");

    let simulator = RuntimeSimulator::new(options)?;
    for metric in [Metric::Latency, Metric::Energy] {
        let report = simulator.run(&trace, metric, ThroughputTracker::last_sample())?;
        println!("{report}");
        let best_fixed = report.best_fixed();
        println!(
            "dynamic gains {:.2}% over the best fixed option ({}), {:.2}% over the worst\n",
            report.gain_over(best_fixed),
            report.fixed()[best_fixed].label,
            report
                .fixed()
                .iter()
                .enumerate()
                .map(|(i, _)| report.gain_over(i))
                .fold(f64::MIN, f64::max),
        );
    }

    // The tracker itself is tiny — the O(1) runtime component of Fig 5.
    let mut tracker = ThroughputTracker::new(0.6);
    for sample in trace.samples().iter().take(5) {
        tracker.observe(*sample);
        let est = tracker.estimate().expect("observed");
        println!(
            "observed {:>7.2} -> estimate {:>7.2} -> option {}",
            sample.get(),
            est.get(),
            map.best_at(est)
        );
    }
    Ok(())
}
