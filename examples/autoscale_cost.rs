//! Autoscaling and cost-aware serving under a diurnal load curve.
//!
//! PRs 3–4 gave each region a batched, admission-controlled serving tier,
//! but its backends were *static*: slot counts fixed for the whole run and
//! dispatch blind to price. Real regions absorb diurnal load by scaling
//! capacity with demand and by steering work toward cheap pools. This
//! example exercises both PR 5 features:
//!
//! 1. **Autoscaling vs. static peak provisioning** — sweeping a diurnal
//!    load curve (hour-by-hour population multipliers) against the same
//!    backend, once provisioned at peak and once behind a
//!    target-utilization [`Autoscaler`]. The autoscaled tier holds p99
//!    within the latency budget while paying materially less
//!    price × energy: off-peak hours run on a fraction of the slots.
//! 2. **Cost-aware dispatch** — a heterogeneous (pricey GPU + cheap CPU)
//!    autoscaled tier at the peak hour, dispatched by least-work-left vs.
//!    [`DispatchPolicy::CostAware`] (price × energy × work-left
//!    water-filling). Cost-aware dispatch routes flow toward the cheap
//!    pool, the pricey pool scales down behind it, and the price × energy
//!    bill drops at comparable tails.
//! 3. **Determinism** — autoscaler state is barrier-side and
//!    demand-driven, so the per-request run (slot timelines included)
//!    reproduces digest-for-digest.
//!
//! ```sh
//! cargo run --release -p lens --example autoscale_cost
//! ```

use lens::prelude::*;
use std::time::Instant;

/// Hour-by-hour population multipliers — a stylized diurnal curve with a
/// nighttime trough and an evening peak.
const DIURNAL: [(u32, usize); 8] = [
    (0, 1),
    (3, 1),
    (6, 2),
    (9, 4),
    (12, 6),
    (15, 8),
    (18, 4),
    (21, 2),
];
/// Devices per multiplier unit.
const BASE_POPULATION: usize = 150;
/// Slots a static tier must provision to survive the peak hour.
const PEAK_SLOTS: usize = 8;
/// The p99 cloud-sojourn budget (ms) both tiers are held to.
const P99_BUDGET_MS: f64 = 2_000.0;

/// The single-backend pool both provisioning strategies share: a batched
/// GPU priced per provisioned slot-epoch, with a per-job serving energy.
fn gpu(slots: usize) -> BackendConfig {
    BackendConfig::new("gpu", slots, 150.0, 5.0)
        .with_batching(8, 50.0)
        .with_price(1.0)
        .with_energy(0.5)
}

fn static_peak() -> CloudServing {
    CloudServing::new(vec![gpu(PEAK_SLOTS)])
}

fn autoscaled() -> CloudServing {
    CloudServing::new(vec![gpu(1).with_autoscaler(
        Autoscaler::new(ScalingSignal::Utilization, 0.65, 0.30, 1, PEAK_SLOTS)
            .with_step(2)
            .with_cooldown(0)
            .with_alpha(0.7),
    )])
}

fn run_hour(population: usize, serving: CloudServing, seed: u64) -> FleetReport {
    let scenario = FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // one "hour" = 10 simulated min
        .trace_interval(Millis::new(60_000.0))
        .regions(vec![RegionShare::new(
            Region::new("USA", Mbps::new(7.5)),
            1.0,
        )])
        .serving(serving)
        .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
        .metric(Metric::Latency)
        .seed(seed)
        .shards(2)
        .fidelity(CloudSimFidelity::PerRequest)
        .build()
        .expect("valid scenario");
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    println!("== autoscaling & cost-aware serving vs. static peak provisioning ==\n");

    // ---- 1. the diurnal sweep ----
    println!(
        "{:>5} {:>8} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}  slot timeline (auto)",
        "hour", "devices", "static $", "p99 ms", "slots", "auto $", "p99 ms", "slots",
    );
    let mut static_cost = 0.0;
    let mut static_energy = 0.0;
    let mut auto_cost = 0.0;
    let mut auto_energy = 0.0;
    for (hour, multiplier) in DIURNAL {
        let population = BASE_POPULATION * multiplier;
        let seed = 1000 + hour as u64;
        let fixed = run_hour(population, static_peak(), seed);
        let scaled = run_hour(population, autoscaled(), seed);

        let fixed_tail = fixed.region_tail(0);
        let scaled_tail = scaled.region_tail(0);
        assert!(
            fixed_tail.p99 <= P99_BUDGET_MS && scaled_tail.p99 <= P99_BUDGET_MS,
            "hour {hour}: p99 budget blown (static {:.0} ms, auto {:.0} ms)",
            fixed_tail.p99,
            scaled_tail.p99
        );
        // Both tiers serve the identical offered load.
        assert_eq!(fixed.offloaded(), scaled.offloaded());

        let timeline = &scaled.backends()[0].slot_timeline;
        println!(
            "{:>5} {:>8} | {:>10.1} {:>10.1} {:>6} | {:>10.1} {:>10.1} {:>6}  {:?}",
            hour,
            population,
            fixed.provision_cost(),
            fixed_tail.p99,
            fixed.backends()[0].final_slots(),
            scaled.provision_cost(),
            scaled_tail.p99,
            scaled.backends()[0].final_slots(),
            timeline,
        );
        static_cost += fixed.provision_cost();
        static_energy += fixed.cloud_energy_mj();
        auto_cost += scaled.provision_cost();
        auto_energy += scaled.cloud_energy_mj();
    }
    let static_pe = static_cost * static_energy;
    let auto_pe = auto_cost * auto_energy;
    println!(
        "\nday totals: static cost {static_cost:.0} × energy {static_energy:.0} mJ → price·energy {static_pe:.2e}"
    );
    println!(
        "            auto   cost {auto_cost:.0} × energy {auto_energy:.0} mJ → price·energy {auto_pe:.2e}  ({:.1}× cheaper)",
        static_pe / auto_pe
    );
    assert!(
        auto_pe < 0.6 * static_pe,
        "autoscaling must be materially cheaper: {auto_pe:.3e} !< 0.6 × {static_pe:.3e}"
    );

    // ---- 2. cost-aware dispatch on a heterogeneous tier ----
    let hetero = |dispatch: DispatchPolicy| {
        let pricey_gpu = BackendConfig::new("gpu", 2, 100.0, 2.0)
            .with_batching(16, 50.0)
            .with_price(6.0)
            .with_energy(2.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.65, 0.30, 1, 6)
                    .with_cooldown(0)
                    .with_alpha(0.7),
            );
        let cheap_cpu = BackendConfig::new("cpu", 2, 120.0, 25.0)
            .with_batching(4, 25.0)
            .with_price(1.0)
            .with_energy(1.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.65, 0.30, 1, 12)
                    .with_cooldown(0)
                    .with_alpha(0.7),
            );
        run_hour(
            BASE_POPULATION * 8,
            CloudServing::new(vec![pricey_gpu, cheap_cpu]).with_dispatch(dispatch),
            42,
        )
    };
    let least_work = hetero(DispatchPolicy::LeastWorkLeft);
    let cost_aware = hetero(DispatchPolicy::CostAware);
    println!("\npeak-hour heterogeneous tier (pricey gpu + cheap cpu), by dispatch policy:");
    for (name, report) in [("least-work", &least_work), ("cost-aware", &cost_aware)] {
        let shares: Vec<String> = report
            .backends()
            .iter()
            .map(|b| {
                format!(
                    "{} {:.0}%",
                    b.backend,
                    100.0 * b.served_jobs / report.offloaded() as f64
                )
            })
            .collect();
        println!(
            "  {name}: cost {:>6.1} × energy {:>7.0} mJ → price·energy {:.3e}, p99 {:>6.1} ms  ({})",
            report.provision_cost(),
            report.cloud_energy_mj(),
            report.price_energy(),
            report.region_tail(0).p99,
            shares.join(", "),
        );
    }
    assert!(
        cost_aware.price_energy() < least_work.price_energy(),
        "cost-aware dispatch must lower price × energy: {:.3e} !< {:.3e}",
        cost_aware.price_energy(),
        least_work.price_energy()
    );
    assert!(
        cost_aware.region_tail(0).p99 <= P99_BUDGET_MS,
        "cost-aware tails must stay within budget"
    );

    // ---- 3. determinism, slot timelines included ----
    let (_, peak_multiplier) = DIURNAL[5];
    let again = run_hour(BASE_POPULATION * peak_multiplier, autoscaled(), 1015);
    let first = run_hour(BASE_POPULATION * peak_multiplier, autoscaled(), 1015);
    assert_eq!(first, again, "determinism contract violated");
    println!(
        "\nrepeat-run digest {:#018x} == first-run digest {:#018x}",
        again.digest(),
        first.digest()
    );

    println!("total example time {:.2?}", start.elapsed());
    Ok(())
}
