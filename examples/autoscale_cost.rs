//! Autoscaling and cost-aware serving under a diurnal load curve.
//!
//! PRs 3–4 gave each region a batched, admission-controlled serving tier,
//! but its backends were *static*: slot counts fixed for the whole run and
//! dispatch blind to price. Real regions absorb diurnal load by scaling
//! capacity with demand and by steering work toward cheap pools. This
//! example exercises both PR 5 features:
//!
//! 1. **Autoscaling vs. static peak provisioning** — one compressed day
//!    driven by a [`WorkloadCurve::diurnal`] *inside a single run*: the
//!    curve modulates every device's offload intent epoch by epoch, so
//!    demand ramps from trough to peak and back without any per-hour
//!    re-simulation. The same day is served twice — once provisioned at
//!    peak and once behind a target-utilization [`Autoscaler`]. The
//!    autoscaled tier holds p99 within the latency budget while paying
//!    materially less price × energy: trough epochs run on a fraction of
//!    the slots.
//! 2. **Cost-aware dispatch** — a heterogeneous (pricey GPU + cheap CPU)
//!    autoscaled tier at the peak hour, dispatched by least-work-left vs.
//!    [`DispatchPolicy::CostAware`] (price × energy × work-left
//!    water-filling). Cost-aware dispatch routes flow toward the cheap
//!    pool, the pricey pool scales down behind it, and the price × energy
//!    bill drops at comparable tails.
//! 3. **Determinism** — autoscaler state is barrier-side and
//!    demand-driven, so the per-request run (slot timelines included)
//!    reproduces digest-for-digest.
//!
//! ```sh
//! cargo run --release -p lens --example autoscale_cost
//! ```

use lens::prelude::*;
use std::time::Instant;

/// Devices in the region for the compressed-day run.
const DAY_POPULATION: usize = 8_100;
/// Epochs in the compressed day (one epoch = one simulated minute, five
/// epochs per diurnal plateau).
const DAY_EPOCHS: usize = 40;
/// Devices in the peak-hour heterogeneous-dispatch run.
const BASE_POPULATION: usize = 150;
/// Slots a static tier must provision to survive the diurnal peak.
const PEAK_SLOTS: usize = 8;
/// The p99 cloud-sojourn budget (ms) both tiers are held to.
const P99_BUDGET_MS: f64 = 2_000.0;

/// The single-backend pool both provisioning strategies share: an
/// unbatched GPU priced per provisioned slot-epoch, with a per-job
/// serving energy. Unbatched, a slot's utilization tracks demand
/// linearly (70 ms/job ≈ 860 jobs/min/slot), so the utilization scaler
/// follows the curve down as cleanly as up; the diurnal peak genuinely
/// needs the full [`PEAK_SLOTS`] pool.
fn gpu(slots: usize) -> BackendConfig {
    BackendConfig::new("gpu", slots, 60.0, 10.0)
        .with_price(1.0)
        .with_energy(0.5)
}

fn static_peak() -> CloudServing {
    CloudServing::new(vec![gpu(PEAK_SLOTS)])
}

fn autoscaled() -> CloudServing {
    // A narrow hold band ([0.45, 0.70]) lets the pool walk back down the
    // evening shoulder instead of coasting at peak, and the two-slot
    // floor keeps the trough from oscillating around its equilibrium.
    CloudServing::new(vec![gpu(2).with_autoscaler(
        Autoscaler::new(ScalingSignal::Utilization, 0.70, 0.45, 2, PEAK_SLOTS)
            .with_step(2)
            .with_cooldown(0)
            .with_alpha(0.7),
    )])
}

fn run_hour(population: usize, serving: CloudServing, seed: u64) -> FleetReport {
    let scenario = FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // one "hour" = 10 simulated min
        .trace_interval(Millis::new(60_000.0))
        .regions(vec![RegionShare::new(
            Region::new("USA", Mbps::new(7.5)),
            1.0,
        )])
        .serving(serving)
        .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
        .metric(Metric::Latency)
        .seed(seed)
        .shards(2)
        .fidelity(CloudSimFidelity::PerRequest)
        .build()
        .expect("valid scenario");
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

/// One compressed day: the diurnal curve rides inside the run, gating
/// each device's offload draw epoch by epoch. A curve requires a local
/// fallback, so the policy is [`FleetPolicy::Dynamic`] — and because the
/// dynamic choice is wait-blind, both provisioning strategies see the
/// identical offered load.
fn run_day(serving: CloudServing) -> FleetReport {
    let horizon = Millis::new(DAY_EPOCHS as f64 * 60_000.0);
    let scenario = FleetScenario::builder()
        .population(DAY_POPULATION)
        .horizon(horizon)
        // 15 s barriers: demand doubles between diurnal plateaus, and the
        // scaler only reacts at the next barrier — a short epoch bounds
        // how long a freshly-doubled load runs on yesterday's slots.
        .trace_interval(Millis::new(15_000.0))
        .regions(vec![RegionShare::new(
            Region::new("USA", Mbps::new(7.5)),
            1.0,
        )])
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Latency)
        .seed(1015)
        .shards(2)
        .fidelity(CloudSimFidelity::PerRequest)
        .workload(WorkloadCurve::diurnal(horizon))
        .build()
        .expect("valid scenario");
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    println!("== autoscaling & cost-aware serving vs. static peak provisioning ==\n");

    // ---- 1. one diurnal day, in-run curve, both provisioning strategies ----
    let fixed = run_day(static_peak());
    let scaled = run_day(autoscaled());

    let curve = WorkloadCurve::diurnal(Millis::new(DAY_EPOCHS as f64 * 60_000.0));
    let auto_timeline = &scaled.backends()[0].slot_timeline;
    println!(
        "{:>5} {:>8} {:>13} {:>11}",
        "epoch", "intent%", "static slots", "auto slots"
    );
    for epoch in 0..DAY_EPOCHS {
        let multiplier_fp = curve.multiplier_fp(epoch as u64 * 60_000_000, 0);
        // Four 15 s barrier windows per printed minute — show the last.
        println!(
            "{:>5} {:>7.1}% {:>13} {:>11}",
            epoch,
            multiplier_fp as f64 / 10_000.0,
            PEAK_SLOTS,
            auto_timeline[epoch * 4 + 3],
        );
    }

    // Wait-blind dynamic choice: both tiers serve the identical offered
    // load, so the comparison is provisioning, not admission.
    assert_eq!(fixed.offloaded(), scaled.offloaded());
    let fixed_tail = fixed.region_tail(0);
    let scaled_tail = scaled.region_tail(0);
    assert!(
        fixed_tail.p99 <= P99_BUDGET_MS && scaled_tail.p99 <= P99_BUDGET_MS,
        "p99 budget blown (static {:.0} ms, auto {:.0} ms)",
        fixed_tail.p99,
        scaled_tail.p99
    );
    assert!(
        scaled.scaling_events() > 0 && auto_timeline.iter().max() > auto_timeline.iter().min(),
        "the utilization autoscaler must track the curve"
    );

    let static_pe = fixed.provision_cost() * fixed.cloud_energy_mj();
    let auto_pe = scaled.provision_cost() * scaled.cloud_energy_mj();
    println!(
        "\nday totals: static cost {:.0} × energy {:.0} mJ → price·energy {static_pe:.2e}, p99 {:.0} ms",
        fixed.provision_cost(),
        fixed.cloud_energy_mj(),
        fixed_tail.p99,
    );
    println!(
        "            auto   cost {:.0} × energy {:.0} mJ → price·energy {auto_pe:.2e}, p99 {:.0} ms  ({:.1}× cheaper)",
        scaled.provision_cost(),
        scaled.cloud_energy_mj(),
        scaled_tail.p99,
        static_pe / auto_pe
    );
    // The hold band deliberately pads slots above the ideal
    // demand-proportional line (that's what keeps the pool from
    // oscillating), so the in-run bound is 0.65× rather than the 0.44×
    // a perfectly demand-tracking tier would reach on this curve.
    assert!(
        auto_pe < 0.65 * static_pe,
        "autoscaling must be materially cheaper: {auto_pe:.3e} !< 0.65 × {static_pe:.3e}"
    );

    // ---- 2. cost-aware dispatch on a heterogeneous tier ----
    let hetero = |dispatch: DispatchPolicy| {
        let pricey_gpu = BackendConfig::new("gpu", 2, 100.0, 2.0)
            .with_batching(16, 50.0)
            .with_price(6.0)
            .with_energy(2.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.65, 0.30, 1, 6)
                    .with_cooldown(0)
                    .with_alpha(0.7),
            );
        let cheap_cpu = BackendConfig::new("cpu", 2, 120.0, 25.0)
            .with_batching(4, 25.0)
            .with_price(1.0)
            .with_energy(1.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.65, 0.30, 1, 12)
                    .with_cooldown(0)
                    .with_alpha(0.7),
            );
        run_hour(
            BASE_POPULATION * 8,
            CloudServing::new(vec![pricey_gpu, cheap_cpu]).with_dispatch(dispatch),
            42,
        )
    };
    let least_work = hetero(DispatchPolicy::LeastWorkLeft);
    let cost_aware = hetero(DispatchPolicy::CostAware);
    println!("\npeak-hour heterogeneous tier (pricey gpu + cheap cpu), by dispatch policy:");
    for (name, report) in [("least-work", &least_work), ("cost-aware", &cost_aware)] {
        let shares: Vec<String> = report
            .backends()
            .iter()
            .map(|b| {
                format!(
                    "{} {:.0}%",
                    b.backend,
                    100.0 * b.served_jobs / report.offloaded() as f64
                )
            })
            .collect();
        println!(
            "  {name}: cost {:>6.1} × energy {:>7.0} mJ → price·energy {:.3e}, p99 {:>6.1} ms  ({})",
            report.provision_cost(),
            report.cloud_energy_mj(),
            report.price_energy(),
            report.region_tail(0).p99,
            shares.join(", "),
        );
    }
    assert!(
        cost_aware.price_energy() < least_work.price_energy(),
        "cost-aware dispatch must lower price × energy: {:.3e} !< {:.3e}",
        cost_aware.price_energy(),
        least_work.price_energy()
    );
    assert!(
        cost_aware.region_tail(0).p99 <= P99_BUDGET_MS,
        "cost-aware tails must stay within budget"
    );

    // ---- 3. determinism, curve and slot timelines included ----
    let again = run_day(autoscaled());
    assert_eq!(scaled, again, "determinism contract violated");
    println!(
        "\nrepeat-day digest {:#018x} == first-day digest {:#018x}",
        again.digest(),
        scaled.digest()
    );

    println!("total example time {:.2?}", start.elapsed());
    Ok(())
}
