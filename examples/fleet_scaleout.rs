//! Fleet scale-out: 100 000 device sessions over a 1-hour horizon against
//! a finite shared cloud.
//!
//! Demonstrates the three things the fleet subsystem adds over the
//! single-device Fig 8 simulator:
//!
//! 1. **Scale** — a 100k-device population (≈ 6M inference events) runs in
//!    seconds, sharded over `std::thread` workers.
//! 2. **Determinism** — the same seed and shard count produce bit-identical
//!    `FleetReport` aggregates (the run is repeated and digests compared).
//! 3. **Contention** — under a congested cloud, dynamic switching still
//!    beats every fixed deployment policy on aggregate edge energy, and
//!    the congestion-aware variant routes latency around the queue.
//!
//! ```sh
//! cargo run --release -p lens --example fleet_scaleout
//! ```

use lens::prelude::*;
use std::time::Instant;

/// The congested-cloud scenario: Table I regions, mixed radio technologies,
/// and deliberately scarce cloud capacity. Each slot at 12 ms/inference
/// serves 5 000 inferences per one-minute epoch, so `slots` is chosen per
/// section to sit *below* the fleet's offload demand — that is the
/// contention axis the single-device simulator cannot express.
fn scenario(
    population: usize,
    slots: usize,
    policy: FleetPolicy,
    metric: Metric,
    shards: usize,
) -> FleetScenario {
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(3_600_000.0)) // 1 hour
        .trace_interval(Millis::new(60_000.0)) // 60 s samples = 60 epochs
        .arrival(ArrivalModel::Periodic {
            period: Millis::new(60_000.0),
        })
        .cloud(CloudCapacity::new(slots, 12.0))
        .policy(policy)
        .metric(metric)
        .seed(2021)
        .shards(shards)
        .build()
        .expect("valid scenario")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== fleet scale-out ({shards} shard(s)) ==\n");

    // 1. Scale: 100k devices, 1 hour, dynamic switching on energy. The
    // USA region alone offloads ~47k inferences per epoch; 8 slots drain
    // only 40k per region, so its cloud queue builds real waits.
    let engine = FleetEngine::new(scenario(
        100_000,
        8,
        FleetPolicy::Dynamic,
        Metric::Energy,
        shards,
    ))?;
    let start = Instant::now();
    let report = engine.run()?;
    let elapsed = start.elapsed();
    println!(
        "100k devices x 1h ({} inferences) in {:.2?}",
        report.inferences(),
        elapsed
    );
    println!("{report}");
    let peak_wait = report
        .queue_wait_ms()
        .iter()
        .flat_map(|region| region.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    println!("peak cloud-queue wait {:.1} s\n", peak_wait / 1000.0);

    // 2. Determinism: a second run must agree bit-for-bit.
    let again = engine.run()?;
    assert_eq!(report, again, "determinism contract violated");
    println!(
        "second run digest {:#018x} == first run digest {:#018x}\n",
        again.digest(),
        report.digest()
    );

    // 3a. Contention, energy view: dynamic vs every fixed policy (smaller
    // population so the whole sweep stays fast). One slot per region
    // drains 5k/epoch — below the USA's ~10k and S. Korea's ~6k offload
    // demand — so the cloud stays congested throughout.
    const SWEEP_POP: usize = 20_000;
    const SWEEP_SLOTS: usize = 1;
    println!("== policy sweep: {SWEEP_POP} devices, congested cloud, energy ==");
    let dynamic = FleetEngine::new(scenario(
        SWEEP_POP,
        SWEEP_SLOTS,
        FleetPolicy::Dynamic,
        Metric::Energy,
        shards,
    ))?
    .run()?;
    let kinds: Vec<DeploymentKind> = {
        let probe = FleetEngine::new(scenario(1, 1, FleetPolicy::Dynamic, Metric::Energy, 1))?;
        probe.cohorts()[0]
            .options
            .iter()
            .map(|o| o.kind().clone())
            .collect()
    };
    println!(
        "  {:<14} total {:>12.0} mJ   ({} switches)",
        "Dynamic",
        dynamic.total_energy_mj(),
        dynamic.switches()
    );
    for kind in kinds {
        let fixed = FleetEngine::new(scenario(
            SWEEP_POP,
            SWEEP_SLOTS,
            FleetPolicy::Fixed(kind.clone()),
            Metric::Energy,
            shards,
        ))?
        .run()?;
        let gain =
            100.0 * (fixed.total_energy_mj() - dynamic.total_energy_mj()) / fixed.total_energy_mj();
        println!(
            "  {:<14} total {:>12.0} mJ   dynamic saves {gain:.2}%",
            kind.to_string(),
            fixed.total_energy_mj(),
        );
        assert!(
            dynamic.total_energy_mj() < fixed.total_energy_mj(),
            "dynamic must beat fixed {kind} on aggregate energy"
        );
    }

    // 3b. Contention, latency view: a fixed All-Cloud fleet saturates the
    // queue; congestion-aware dynamic routes around it.
    println!("\n== latency under congestion: {SWEEP_POP} devices ==");
    for (label, policy) in [
        ("All-Cloud", FleetPolicy::Fixed(DeploymentKind::AllCloud)),
        ("Dynamic", FleetPolicy::Dynamic),
        ("Congestion-aware", FleetPolicy::DynamicCongestionAware),
    ] {
        let r = FleetEngine::new(scenario(
            SWEEP_POP,
            SWEEP_SLOTS,
            policy,
            Metric::Latency,
            shards,
        ))?
        .run()?;
        let peak_queue = r
            .queue_depth()
            .iter()
            .flat_map(|region| region.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        println!(
            "  {label:<17} mean {:>8.1} ms  p99 {:>9.1} ms  peak queue {:>8.0} jobs",
            r.latency().mean(),
            r.latency().percentile(99.0),
            peak_queue
        );
    }

    println!("\ntotal example time {:.2?}", start.elapsed());
    Ok(())
}
