//! Split inference as a first-class workload: staged device → edge →
//! cloud pipelines, from plan compilation to fleet economics.
//!
//! The paper's layer-distribution decision picks one partition point per
//! device; this example generalizes it along the axis of related work
//! (Lin & Wang 2021, LCP): the network is sliced into consecutive
//! segments and every remote segment becomes its own schedulable request
//! on the serving tier, with the activation tensor priced across each
//! boundary. Three things are shown:
//!
//! 1. **The split point moves with link quality** — enumerating
//!    [`StagedPlan`]s over AlexNet and pricing each candidate's uplink
//!    with the fixed-point [`TransferModel`], a poor link pushes the
//!    optimal cut deeper into the network (local-heavier: smaller
//!    activations are worth more device compute), while a fast link
//!    offloads early.
//! 2. **Pipeline depth × link quality × backend heterogeneity** — the
//!    fleet sweep: staging multiplies serving work and pays every
//!    boundary transfer, slow-uplink regions pay disproportionally, and
//!    a heterogeneous (gpu + cpu) tier absorbs staged load differently
//!    than a uniform one.
//! 3. **Determinism survives pipelining** — staged runs are digest-
//!    identical across 1/2/4 shards and across sequential vs. parallel
//!    barrier replay, in both fidelities.
//!
//! ```sh
//! cargo run --release -p lens --example split_pipeline
//! ```

use lens::prelude::*;
use std::time::Instant;

/// Edge-device compute rate (MACs per µs): a modest mobile NPU.
const DEVICE_MACS_PER_US: u64 = 500;
/// Cloud compute rate (MACs per µs): two orders faster than the device.
const CLOUD_MACS_PER_US: u64 = 50_000;

/// Prices a candidate plan end-to-end on one uplink: device compute +
/// uplink transfer + remote compute, all in integer microseconds — the
/// argmin is deterministic because no float ever enters the cost.
fn plan_cost_us(plan: &StagedPlan, model: &TransferModel, total_macs: u64) -> u128 {
    let device_us = u128::from(plan.device_macs() / DEVICE_MACS_PER_US);
    let transfer_us: u128 = plan
        .boundaries()
        .iter()
        .map(|b| u128::from(model.cost_us(b.bytes)))
        .sum();
    let remote_us = u128::from((total_macs - plan.device_macs()) / CLOUD_MACS_PER_US);
    device_us + transfer_us + remote_us
}

fn staged_scenario(
    serving: CloudServing,
    pipeline: Option<PipelineSpec>,
    shards: usize,
    fidelity: CloudSimFidelity,
    replay: ReplayMode,
) -> FleetScenario {
    let mut builder = FleetScenario::builder()
        .population(4_000)
        .horizon(Millis::new(900_000.0)) // 15 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(41)
        .shards(shards)
        .fidelity(fidelity)
        .replay(replay);
    if let Some(pipeline) = pipeline {
        builder = builder.pipeline(pipeline);
    }
    builder.build().expect("valid scenario")
}

/// A roomy uniform GPU pool: staged load (3x the requests) still clears,
/// so what the sweep prices is per-stage service + transfers, not a
/// diverging queue.
fn uniform_serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 8, 60.0, 4.0).with_batching(16, 40.0)
    ])
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 80.0 })
}

/// The same aggregate drain split across a fast batched GPU pool and a
/// flat CPU pool — heterogeneity moves the staged tail, not the mean.
fn hetero_serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 4, 100.0, 2.0).with_batching(32, 60.0),
        BackendConfig::new("cpu", 8, 25.0, 20.0).with_batching(4, 20.0),
    ])
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 80.0 })
}

fn run(scenario: FleetScenario) -> FleetReport {
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();

    // 1. The split point moves with link quality. Enumerate every viable
    // single-split plan over AlexNet and pick the integer-cost argmin per
    // link: the poor link buys device compute with transfer savings.
    let analysis = zoo::alexnet().analyze()?;
    let plans = StagedPlan::enumerate(&analysis, 1);
    println!(
        "== split point vs. link quality ({} candidate plans over AlexNet) ==\n",
        plans.len()
    );
    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>12}",
        "link Mbps", "cut layer", "uplink bytes", "device MACs", "cost ms"
    );
    let mut device_macs_by_link = Vec::new();
    for mbps in [16.1, 7.5, 2.0, 0.7] {
        let model = TransferModel::new(Mbps::new(mbps));
        let best = StagedPlan::best(&plans, |p| plan_cost_us(p, &model, analysis.total_macs()))
            .expect("AlexNet admits viable splits");
        println!(
            "{mbps:>10} {:>10} {:>14} {:>16} {:>12.1}",
            best.cut_layers()[0],
            best.uplink_bytes().expect("single-split plan offloads"),
            best.device_macs(),
            plan_cost_us(best, &model, analysis.total_macs()) as f64 / 1000.0,
        );
        device_macs_by_link.push(best.device_macs());
    }
    assert!(
        device_macs_by_link.windows(2).all(|w| w[0] <= w[1]),
        "device share must grow monotonically as the link degrades"
    );
    assert!(
        device_macs_by_link.last() > device_macs_by_link.first(),
        "the 0.7 Mbps split must be strictly local-heavier than 16.1 Mbps"
    );

    // Compile the fleet's staged workloads from real plans: a two-stage
    // and a three-stage pipeline, boundaries carrying the exact
    // activation bytes between *remote* stages.
    let two_stage = StagedPlan::enumerate(&analysis, 2);
    let two_model = TransferModel::new(Mbps::new(7.5));
    let plan2 = StagedPlan::best(&two_stage, |p| {
        plan_cost_us(p, &two_model, analysis.total_macs())
    })
    .expect("two-stage plans exist");
    let three_stage = StagedPlan::enumerate(&analysis, 3);
    let plan3 = StagedPlan::best(&three_stage, |p| {
        plan_cost_us(p, &two_model, analysis.total_macs())
    })
    .expect("three-stage plans exist");
    println!("\ntwo-stage plan:   {plan2}");
    println!("three-stage plan: {plan3}");
    let spec2 = PipelineSpec::from_boundary_bytes(plan2.remote_transfer_bytes());
    let spec3 = PipelineSpec::from_boundary_bytes(plan3.remote_transfer_bytes());
    assert_eq!(spec2.depth(), 2);
    assert_eq!(spec3.depth(), 3);

    // 2. The fleet sweep: pipeline depth × backend heterogeneity. Each
    // staged offload rides the serving tier once per stage and pays its
    // boundary transfers, so depth costs latency — and how much depends
    // on what is serving.
    let shards = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    println!("\n== pipeline depth x backend heterogeneity (4000 devices, {shards} shard(s)) ==\n");
    println!(
        "{:<14} {:<10} {:>10} {:>10} {:>14} {:>12}",
        "serving", "depth", "mean ms", "p99 ms", "transfer ms", "offloaded"
    );
    let mut staged_hetero: Option<FleetReport> = None;
    let mut monolithic_hetero: Option<FleetReport> = None;
    for (label, serving) in [("uniform", 0), ("heterogeneous", 1)] {
        for (depth, pipeline) in [
            (1usize, None),
            (2, Some(spec2.clone())),
            (3, Some(spec3.clone())),
        ] {
            let tier = if serving == 0 {
                uniform_serving()
            } else {
                hetero_serving()
            };
            let report = run(staged_scenario(
                tier,
                pipeline,
                shards,
                CloudSimFidelity::PerRequest,
                ReplayMode::Auto,
            ));
            println!(
                "{label:<14} {depth:<10} {:>10.1} {:>10.1} {:>14.1} {:>12}",
                report.latency().mean(),
                report.latency().percentile(99.0),
                report.transfer_ms(),
                report.offloaded(),
            );
            if label == "heterogeneous" && depth == 3 {
                staged_hetero = Some(report);
            } else if label == "heterogeneous" && depth == 1 {
                monolithic_hetero = Some(report);
            }
        }
    }
    let staged = staged_hetero.expect("sweep ran");
    let monolithic = monolithic_hetero.expect("sweep ran");
    assert!(staged.transfer_ms() > 0.0);
    assert!(
        staged.latency().mean() > monolithic.latency().mean(),
        "staging must cost latency on the same tier"
    );

    // Link quality in the same run: every stage transfer is priced on
    // the origin region's uplink, exactly as the engine prices it —
    // TransferModel on the region's nominal rate, summed over the
    // plan's remote boundaries. That per-offload toll is deterministic;
    // the observed mean-latency delta also folds in each region's
    // offload mix and queueing, so it is reported as narrative next to
    // the priced column.
    println!("\nper-region toll of the three-stage pipeline (ms):");
    println!(
        "  {:<14} {:>10} {:>12} {:>10} {:>10}",
        "region", "priced/off", "monolithic", "staged", "delta"
    );
    let region_links = [("S. Korea", 16.1), ("USA", 7.5), ("Afghanistan", 0.7)];
    let priced_ms = |name: &str| {
        let (_, mbps) = region_links
            .iter()
            .find(|(region, _)| *region == name)
            .expect("region has a nominal uplink");
        let model = TransferModel::new(Mbps::new(*mbps));
        let total_us: u64 = plan3
            .remote_transfer_bytes()
            .iter()
            .map(|&bytes| model.cost_us(bytes))
            .sum();
        total_us as f64 / 1000.0
    };
    for (mono, stag) in monolithic.regions().iter().zip(staged.regions()) {
        let (m, s) = (mono.mean_latency_ms(), stag.mean_latency_ms());
        println!(
            "  {:<14} {:>10.1} {m:>12.1} {s:>10.1} {:>+10.1}",
            mono.region,
            priced_ms(&mono.region),
            s - m
        );
    }
    assert!(
        priced_ms("Afghanistan") > 10.0 * priced_ms("S. Korea"),
        "the 0.7 Mbps region must pay a far larger per-offload staging toll than 16.1 Mbps"
    );

    // Per-stage ledger: conservation means every stage count equals the
    // offload count, and the per-request tier has exact stage sojourns.
    println!("\nstage ledger (staged heterogeneous run):");
    for (k, (&count, hist)) in staged
        .stage_completions()
        .iter()
        .zip(staged.stage_sojourn())
        .enumerate()
    {
        println!(
            "  stage {}: {count} completions, mean sojourn {:.1} ms",
            k + 1,
            hist.mean()
        );
        assert_eq!(count, staged.offloaded(), "stage conservation violated");
    }

    // 3. Determinism pins: pipelined runs are digest-identical across
    // shard counts and replay modes, in both fidelities.
    println!("\n== determinism pins ==");
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let one = run(staged_scenario(
            hetero_serving(),
            Some(spec3.clone()),
            1,
            fidelity,
            ReplayMode::Sequential,
        ));
        for shard_count in [2, 4] {
            let other = run(staged_scenario(
                hetero_serving(),
                Some(spec3.clone()),
                shard_count,
                fidelity,
                ReplayMode::Sequential,
            ));
            assert_eq!(
                one.digest(),
                other.digest(),
                "{fidelity:?}: staged digest differs at {shard_count} shards"
            );
        }
        let parallel = run(staged_scenario(
            hetero_serving(),
            Some(spec3.clone()),
            4,
            fidelity,
            ReplayMode::Parallel,
        ));
        assert_eq!(one.digest(), parallel.digest());
        println!(
            "{fidelity:?}: digest {:#018x} across 1/2/4 shards, sequential == parallel",
            one.digest()
        );
    }

    println!("\ntotal example time {:.2?}", start.elapsed());
    Ok(())
}
