//! Regional deployment planning: the same network prefers different
//! edge-cloud distributions in different regions (the paper's Table I
//! motivation), so a design team shipping to several markets needs the
//! wireless expectation *at design time*.
//!
//! ```sh
//! cargo run --release -p lens --example regional_deployment
//! ```

use lens::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = zoo::alexnet().analyze()?;

    println!("AlexNet deployment planning per region (Opensignal 2020 uplinks)\n");
    for (label, profile, tech) in [
        (
            "GPU + WiFi",
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
        ),
        (
            "CPU + LTE",
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
        ),
    ] {
        println!("--- {label} ---");
        let perf = profile_network(&analysis, &profile);
        let planner = DeploymentPlanner::new(WirelessLink::new(tech, Mbps::new(3.0)));
        let options = planner.enumerate(&analysis, &perf)?;

        for region in Region::opensignal_2020() {
            let tu = region.uplink();
            let (lat_opt, lat) = DeploymentPlanner::best_at(&options, Metric::Latency, tu)?;
            let (en_opt, en) = DeploymentPlanner::best_at(&options, Metric::Energy, tu)?;
            println!(
                "{:<12} ({:>4.1} Mbps): latency {:>7.1} ms via {:<12} | energy {:>7.1} mJ via {}",
                region.name(),
                tu.get(),
                lat,
                lat_opt.to_string(),
                en,
                en_opt
            );
        }

        // Where exactly do the preferences flip? (§IV.E thresholds.)
        for metric in [Metric::Latency, Metric::Energy] {
            let map = DominanceMap::build(&options, metric)?;
            let thresholds: Vec<String> = map
                .thresholds()
                .iter()
                .map(|t| format!("{:.2}", t.get()))
                .collect();
            println!(
                "{metric} switching thresholds (Mbps): [{}]",
                thresholds.join(", ")
            );
        }
        println!();
    }

    println!(
        "A deployment pinned for S. Korea's uplink would be mis-deployed in Afghanistan \
         — which is why LENS folds t_u into the search objectives instead of fixing the \
         architecture first."
    );
    Ok(())
}
